//! The [`Graph`] type: an undirected attributed graph.

use std::collections::BTreeSet;

use grgad_error::GrgadError;
use grgad_linalg::{CsrMatrix, Matrix};

/// An undirected, simple, attributed graph.
///
/// Nodes are identified by contiguous indices `0..n`. Edges are stored both
/// as sorted adjacency lists (for traversal) and are exportable as a CSR
/// adjacency matrix (for GNN message passing). Each node carries a feature
/// row in the `features` matrix.
///
/// # Mutation invariants
///
/// The mutators ([`Graph::add_edge`], [`Graph::remove_edge`],
/// [`Graph::add_node`], [`Graph::set_features`]) maintain two invariants
/// that delta replay (the serving layer's `GraphDelta` stream) relies on:
///
/// 1. **Neighbor ordering** — every adjacency list stays sorted ascending
///    after any mutation sequence, so [`Graph::neighbors`] is
///    binary-searchable and iteration order is a pure function of the edge
///    *set*, never of the insertion *order*.
/// 2. **Derived CSR, no stale cache** — [`Graph::adjacency`] and
///    [`Graph::normalized_adjacency`] are derived from the adjacency lists
///    on every call (there is no cached CSR to invalidate), so a graph
///    mutated edge-by-edge is indistinguishable — bit-for-bit, including
///    CSR column order — from one rebuilt with [`Graph::from_edges`] from
///    the same final edge set.
///
/// Together these make replaying a delta stream equivalent to rebuilding
/// the final graph from scratch, which is what the incremental scoring
/// engine's parity guarantee rests on (regression-tested in
/// `mutation_then_adjacency_matches_from_edges_rebuild`).
#[derive(Clone, Debug)]
pub struct Graph {
    adj: Vec<Vec<usize>>,
    features: Matrix,
    num_edges: usize,
}

impl Graph {
    /// Creates a graph with `n` isolated nodes and the given feature matrix,
    /// validating the row count and that every feature value is finite.
    ///
    /// The boundary-facing counterpart of [`Graph::new`] for untrusted
    /// input (servers, loaders). Internal generators whose shapes are
    /// correct by construction keep the infallible constructors.
    pub fn try_new(n: usize, features: Matrix) -> Result<Self, GrgadError> {
        if features.rows() != n {
            return Err(GrgadError::shape(
                "Graph::try_new: feature rows per node",
                n,
                features.rows(),
            ));
        }
        features.validate_finite("Graph::try_new: node features")?;
        Ok(Self {
            adj: vec![Vec::new(); n],
            features,
            num_edges: 0,
        })
    }

    /// Creates a graph from an edge list, validating feature shape,
    /// finiteness and that every endpoint is a valid node id. Self-loops
    /// and duplicate edges are ignored, exactly as in
    /// [`Graph::from_edges`].
    pub fn try_from_edges(
        n: usize,
        features: Matrix,
        edges: &[(usize, usize)],
    ) -> Result<Self, GrgadError> {
        let mut g = Self::try_new(n, features)?;
        for &(u, v) in edges {
            for node in [u, v] {
                if node >= n {
                    return Err(GrgadError::node("Graph::try_from_edges: endpoint", node, n));
                }
            }
            g.add_edge(u, v);
        }
        Ok(g)
    }

    /// Checks the boundary invariants a graph must satisfy before entering
    /// the pipeline: at least one node ([`GrgadError::EmptyGraph`]) and
    /// finite features ([`GrgadError::NonFiniteInput`]). The structural
    /// invariants (sorted symmetric adjacency, no self-loops) hold by
    /// construction for any `Graph` built through this crate's API, so they
    /// are debug-asserted rather than re-scanned on every call.
    pub fn validate(&self, context: &str) -> Result<(), GrgadError> {
        if self.num_nodes() == 0 {
            return Err(GrgadError::empty_graph(context));
        }
        self.features
            .validate_finite(&format!("{context}: node features"))?;
        debug_assert!(self.adj.iter().enumerate().all(|(u, nbrs)| {
            nbrs.windows(2).all(|w| w[0] < w[1]) && nbrs.iter().all(|&v| v != u)
        }));
        debug_assert_eq!(
            self.adj.iter().map(Vec::len).sum::<usize>(),
            2 * self.num_edges,
            "derived edge counter out of sync with adjacency lists"
        );
        Ok(())
    }

    /// Debug-build check of the mutation invariants around one touched edge:
    /// both endpoint lists stay strictly sorted (deduplicated, loop-free) and
    /// mirror each other. Called after every edge mutation so a future
    /// mutator that breaks the sorted-insert discipline fails loudly in
    /// `cargo test` instead of silently degrading `has_edge` binary search.
    #[inline]
    fn debug_assert_edge_invariants(&self, u: usize, v: usize) {
        debug_assert!(
            self.adj[u].windows(2).all(|w| w[0] < w[1]),
            "neighbors of {u} no longer strictly sorted"
        );
        debug_assert!(
            self.adj[v].windows(2).all(|w| w[0] < w[1]),
            "neighbors of {v} no longer strictly sorted"
        );
        debug_assert_eq!(
            self.adj[u].binary_search(&v).is_ok(),
            self.adj[v].binary_search(&u).is_ok(),
            "adjacency no longer symmetric between {u} and {v}"
        );
        debug_assert!(
            self.adj[u].binary_search(&u).is_err() && self.adj[v].binary_search(&v).is_err(),
            "self-loop introduced at {u} or {v}"
        );
    }

    /// Creates a graph with `n` isolated nodes and the given feature matrix.
    ///
    /// Trusted-input constructor; see [`Graph::try_new`] for the validated
    /// boundary version.
    ///
    /// # Panics
    /// Panics if `features.rows() != n`.
    pub fn new(n: usize, features: Matrix) -> Self {
        assert_eq!(
            features.rows(),
            n,
            "Graph::new: feature matrix must have one row per node"
        );
        Self {
            adj: vec![Vec::new(); n],
            features,
            num_edges: 0,
        }
    }

    /// Creates a graph with `n` nodes, zero-dimensional features.
    pub fn with_no_features(n: usize) -> Self {
        Self::new(n, Matrix::zeros(n, 0))
    }

    /// Creates a graph from an edge list (duplicates and self-loops ignored).
    pub fn from_edges(n: usize, features: Matrix, edges: &[(usize, usize)]) -> Self {
        let mut g = Self::new(n, features);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Dimensionality of node features.
    #[inline]
    pub fn feature_dim(&self) -> usize {
        self.features.cols()
    }

    /// The node-feature matrix (`n × d`).
    #[inline]
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// Mutable access to the node-feature matrix.
    #[inline]
    pub fn features_mut(&mut self) -> &mut Matrix {
        &mut self.features
    }

    /// Replaces the feature matrix.
    ///
    /// # Panics
    /// Panics if the new matrix does not have one row per node.
    pub fn set_features(&mut self, features: Matrix) {
        assert_eq!(
            features.rows(),
            self.num_nodes(),
            "set_features: row mismatch"
        );
        self.features = features;
    }

    /// Sorted neighbors of node `u`.
    #[inline]
    pub fn neighbors(&self, u: usize) -> &[usize] {
        &self.adj[u]
    }

    /// Degree of node `u`.
    #[inline]
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// True if the undirected edge `(u, v)` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.adj[u].binary_search(&v).is_ok()
    }

    /// [`Graph::add_edge`] with boundary validation instead of a panic:
    /// `Err(InvalidNodeId)` for an out-of-range endpoint. Self-loops and
    /// duplicates are ignored (`Ok(false)`), matching the infallible
    /// mutator so delta replay and direct construction stay equivalent.
    pub fn try_add_edge(&mut self, u: usize, v: usize) -> Result<bool, GrgadError> {
        for node in [u, v] {
            if node >= self.num_nodes() {
                return Err(GrgadError::node(
                    "add_edge: endpoint",
                    node,
                    self.num_nodes(),
                ));
            }
        }
        Ok(self.add_edge(u, v))
    }

    /// [`Graph::remove_edge`] with boundary validation instead of a panic:
    /// `Err(InvalidNodeId)` for an out-of-range endpoint; removing an
    /// absent edge is `Ok(false)`.
    pub fn try_remove_edge(&mut self, u: usize, v: usize) -> Result<bool, GrgadError> {
        for node in [u, v] {
            if node >= self.num_nodes() {
                return Err(GrgadError::node(
                    "remove_edge: endpoint",
                    node,
                    self.num_nodes(),
                ));
            }
        }
        Ok(self.remove_edge(u, v))
    }

    /// [`Graph::add_node`] with boundary validation instead of a panic:
    /// `Err(ShapeMismatch)` on a feature-dimension mismatch,
    /// `Err(NonFiniteInput)` on NaN/infinite features.
    pub fn try_add_node(&mut self, feature: &[f32]) -> Result<usize, GrgadError> {
        if self.num_nodes() > 0 && feature.len() != self.feature_dim() {
            return Err(GrgadError::shape(
                "add_node: feature dimension",
                self.feature_dim(),
                feature.len(),
            ));
        }
        if !feature.iter().all(|v| v.is_finite()) {
            return Err(GrgadError::non_finite("add_node: features"));
        }
        Ok(self.add_node(feature))
    }

    /// Replaces one node's feature row, validating the node id, the
    /// dimension and finiteness — the `SetFeatures` delta operation.
    pub fn try_set_node_features(
        &mut self,
        node: usize,
        feature: &[f32],
    ) -> Result<(), GrgadError> {
        if node >= self.num_nodes() {
            return Err(GrgadError::node(
                "set_node_features: node",
                node,
                self.num_nodes(),
            ));
        }
        if feature.len() != self.feature_dim() {
            return Err(GrgadError::shape(
                "set_node_features: feature dimension",
                self.feature_dim(),
                feature.len(),
            ));
        }
        if !feature.iter().all(|v| v.is_finite()) {
            return Err(GrgadError::non_finite("set_node_features: features"));
        }
        self.features.row_mut(node).copy_from_slice(feature);
        Ok(())
    }

    /// Adds the undirected edge `(u, v)`. Self-loops and duplicate edges are
    /// ignored. Returns true if the edge was inserted.
    ///
    /// Maintains the sorted-neighbor invariant (see the type-level
    /// *Mutation invariants* section) via sorted insertion on both
    /// endpoints.
    pub fn add_edge(&mut self, u: usize, v: usize) -> bool {
        assert!(
            u < self.num_nodes() && v < self.num_nodes(),
            "add_edge: node out of range"
        );
        if u == v || self.has_edge(u, v) {
            return false;
        }
        let pos_u = self.adj[u]
            .binary_search(&v)
            .expect_err("has_edge ruled out presence");
        self.adj[u].insert(pos_u, v);
        let pos_v = self.adj[v]
            .binary_search(&u)
            .expect_err("has_edge ruled out presence");
        self.adj[v].insert(pos_v, u);
        self.num_edges += 1;
        self.debug_assert_edge_invariants(u, v);
        true
    }

    /// Removes the undirected edge `(u, v)`. Returns true if it existed.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> bool {
        if let Ok(pos) = self.adj[u].binary_search(&v) {
            self.adj[u].remove(pos);
            let pos_v = self.adj[v].binary_search(&u).expect("asymmetric adjacency");
            self.adj[v].remove(pos_v);
            self.num_edges -= 1;
            self.debug_assert_edge_invariants(u, v);
            true
        } else {
            false
        }
    }

    /// Adds a new node with the given feature row, returning its index.
    /// Amortized `O(feature_dim)`: the feature matrix grows in place
    /// (`Matrix::push_row`) rather than being rebuilt, so a delta stream
    /// appending many nodes stays linear instead of quadratic.
    ///
    /// # Panics
    /// Panics if the feature length does not match the graph's feature dim
    /// (unless the graph currently has zero nodes).
    pub fn add_node(&mut self, feature: &[f32]) -> usize {
        if self.num_nodes() > 0 {
            assert_eq!(
                feature.len(),
                self.feature_dim(),
                "add_node: feature dimension mismatch"
            );
        }
        let idx = self.num_nodes();
        self.adj.push(Vec::new());
        self.features.push_row(feature);
        debug_assert_eq!(
            self.features.rows(),
            self.adj.len(),
            "feature matrix out of sync with adjacency after add_node"
        );
        idx
    }

    /// Iterator over all undirected edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(u, nbrs)| nbrs.iter().filter(move |&&v| u < v).map(move |&v| (u, v)))
    }

    /// The adjacency matrix as CSR (all weights 1.0).
    ///
    /// Built directly from the sorted, deduplicated neighbor lists via
    /// [`CsrMatrix::from_sorted_parts`] — no triplet staging vectors — so a
    /// million-node adjacency export costs exactly one `indptr` +
    /// `indices` + `values` allocation. Bit-identical to the historical
    /// `from_triplets` construction because the lists are already in the
    /// order `from_triplets` would sort them into.
    pub fn adjacency(&self) -> CsrMatrix {
        let n = self.num_nodes();
        let nnz = 2 * self.num_edges;
        let mut indptr = Vec::with_capacity(n + 1);
        let mut indices = Vec::with_capacity(nnz);
        indptr.push(0);
        for nbrs in &self.adj {
            indices.extend_from_slice(nbrs);
            indptr.push(indices.len());
        }
        let values = vec![1.0; indices.len()];
        CsrMatrix::from_sorted_parts(n, n, indptr, indices, values)
            .expect("sorted adjacency lists are valid CSR by construction")
    }

    /// Symmetric-normalized adjacency with self-loops,
    /// `D̂^{-1/2} (A + I) D̂^{-1/2}` — the standard GCN propagation operator.
    pub fn normalized_adjacency(&self) -> CsrMatrix {
        self.adjacency().add_self_loops(1.0).symmetric_normalize()
    }

    /// The induced subgraph on `nodes` (in the given order). Returns the
    /// subgraph plus the mapping from subgraph index to original node id.
    ///
    /// Duplicate node ids are ignored after their first occurrence.
    pub fn induced_subgraph(&self, nodes: &[usize]) -> (Graph, Vec<usize>) {
        let mut seen = BTreeSet::new();
        let mut order: Vec<usize> = Vec::with_capacity(nodes.len());
        for &v in nodes {
            assert!(
                v < self.num_nodes(),
                "induced_subgraph: node {v} out of range"
            );
            if seen.insert(v) {
                order.push(v);
            }
        }
        let features = self.features.select_rows(&order);
        let mut sub = Graph::new(order.len(), features);
        let index_of = |v: usize| order.iter().position(|&x| x == v);
        // For small groups a linear scan is fine; for large node sets build a map.
        if order.len() > 64 {
            let mut map = std::collections::BTreeMap::new();
            for (i, &v) in order.iter().enumerate() {
                map.insert(v, i);
            }
            for (i, &v) in order.iter().enumerate() {
                for &w in self.neighbors(v) {
                    if let Some(&j) = map.get(&w) {
                        if i < j {
                            sub.add_edge(i, j);
                        }
                    }
                }
            }
        } else {
            for (i, &v) in order.iter().enumerate() {
                for &w in self.neighbors(v) {
                    if let Some(j) = index_of(w) {
                        if i < j {
                            sub.add_edge(i, j);
                        }
                    }
                }
            }
        }
        (sub, order)
    }

    /// Average degree of the graph.
    pub fn average_degree(&self) -> f32 {
        if self.num_nodes() == 0 {
            0.0
        } else {
            2.0 * self.num_edges as f32 / self.num_nodes() as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        let mut g = Graph::new(n, Matrix::zeros(n, 2));
        for i in 0..n.saturating_sub(1) {
            g.add_edge(i, i + 1);
        }
        g
    }

    /// The delta-replay invariant: an arbitrary interleaving of
    /// `add_node`/`add_edge`/`remove_edge` must leave the graph — sorted
    /// neighbor lists AND the derived CSR adjacency — bit-identical to a
    /// `from_edges` rebuild of the final edge set. `adjacency()` derives the
    /// CSR fresh on every call, so there is no cache to go stale.
    #[test]
    fn mutation_then_adjacency_matches_from_edges_rebuild() {
        let mut g = Graph::new(4, Matrix::zeros(4, 2));
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        g.add_edge(1, 2);
        g.remove_edge(0, 1);
        let id = g.add_node(&[1.0, 2.0]);
        g.add_edge(id, 0);
        g.add_edge(1, 3);
        g.remove_edge(2, 3);
        g.add_edge(0, 1); // re-insert a previously removed edge

        let edges: Vec<(usize, usize)> = g.edges().collect();
        let rebuilt = Graph::from_edges(g.num_nodes(), g.features().clone(), &edges);
        assert_eq!(g.num_edges(), rebuilt.num_edges());
        for u in 0..g.num_nodes() {
            assert_eq!(g.neighbors(u), rebuilt.neighbors(u), "node {u}");
            assert!(g.neighbors(u).windows(2).all(|w| w[0] < w[1]));
        }
        let (a, b) = (g.adjacency(), rebuilt.adjacency());
        assert_eq!(a.nnz(), b.nnz());
        grgad_linalg::assert_close(&a.to_dense(), &b.to_dense(), 0.0);
        grgad_linalg::assert_close(
            &g.normalized_adjacency().to_dense(),
            &rebuilt.normalized_adjacency().to_dense(),
            0.0,
        );
    }

    #[test]
    fn try_constructors_validate_input() {
        assert!(Graph::try_new(3, Matrix::zeros(3, 2)).is_ok());
        assert!(matches!(
            Graph::try_new(3, Matrix::zeros(2, 2)).unwrap_err(),
            GrgadError::ShapeMismatch { .. }
        ));
        let mut nan = Matrix::zeros(2, 1);
        nan[(0, 0)] = f32::NAN;
        assert!(matches!(
            Graph::try_new(2, nan).unwrap_err(),
            GrgadError::NonFiniteInput { .. }
        ));
        assert!(matches!(
            Graph::try_from_edges(2, Matrix::zeros(2, 0), &[(0, 5)]).unwrap_err(),
            GrgadError::InvalidNodeId { node: 5, .. }
        ));
        let g = Graph::try_from_edges(3, Matrix::zeros(3, 0), &[(0, 1), (1, 0), (2, 2)]).unwrap();
        assert_eq!(g.num_edges(), 1, "duplicates and self-loops ignored");
    }

    #[test]
    fn validate_rejects_empty_and_non_finite() {
        assert!(matches!(
            Graph::with_no_features(0).validate("fit").unwrap_err(),
            GrgadError::EmptyGraph { .. }
        ));
        let mut g = Graph::new(2, Matrix::zeros(2, 1));
        assert!(g.validate("fit").is_ok());
        g.features_mut()[(1, 0)] = f32::INFINITY;
        assert!(matches!(
            g.validate("fit").unwrap_err(),
            GrgadError::NonFiniteInput { .. }
        ));
    }

    #[test]
    fn try_mutators_validate_and_mirror_infallible_semantics() {
        let mut g = Graph::new(3, Matrix::zeros(3, 2));
        assert!(g.try_add_edge(0, 1).unwrap());
        assert!(!g.try_add_edge(1, 0).unwrap(), "duplicate is Ok(false)");
        assert!(!g.try_add_edge(2, 2).unwrap(), "self-loop is Ok(false)");
        assert!(matches!(
            g.try_add_edge(0, 9).unwrap_err(),
            GrgadError::InvalidNodeId { node: 9, .. }
        ));
        assert!(g.try_remove_edge(0, 1).unwrap());
        assert!(!g.try_remove_edge(0, 1).unwrap());
        assert!(g.try_remove_edge(7, 0).is_err());

        assert!(matches!(
            g.try_add_node(&[1.0]).unwrap_err(),
            GrgadError::ShapeMismatch { .. }
        ));
        assert!(g.try_add_node(&[f32::NAN, 0.0]).is_err());
        assert_eq!(g.try_add_node(&[1.0, 2.0]).unwrap(), 3);

        assert!(g.try_set_node_features(1, &[5.0, 6.0]).is_ok());
        assert_eq!(g.features().row(1), &[5.0, 6.0]);
        assert!(g.try_set_node_features(9, &[0.0, 0.0]).is_err());
        assert!(g.try_set_node_features(1, &[0.0]).is_err());
        assert!(g.try_set_node_features(1, &[f32::NAN, 0.0]).is_err());
    }

    #[test]
    fn construction_and_counts() {
        let g = path_graph(5);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.feature_dim(), 2);
        assert!((g.average_degree() - 1.6).abs() < 1e-6);
    }

    #[test]
    fn add_edge_rejects_duplicates_and_self_loops() {
        let mut g = Graph::with_no_features(3);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(1, 0));
        assert!(!g.add_edge(2, 2));
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
    }

    #[test]
    fn remove_edge() {
        let mut g = path_graph(3);
        assert!(g.remove_edge(0, 1));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.num_edges(), 1);
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn neighbors_sorted() {
        let mut g = Graph::with_no_features(5);
        g.add_edge(2, 4);
        g.add_edge(2, 0);
        g.add_edge(2, 3);
        assert_eq!(g.neighbors(2), &[0, 3, 4]);
        assert_eq!(g.degree(2), 3);
    }

    #[test]
    fn add_node_extends_features() {
        let mut g = Graph::new(2, Matrix::from_rows(&[&[1.0], &[2.0]]));
        let id = g.add_node(&[3.0]);
        assert_eq!(id, 2);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.features().row(2), &[3.0]);
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = path_graph(4);
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn adjacency_is_symmetric_csr() {
        let g = path_graph(3);
        let a = g.adjacency();
        assert_eq!(a.nnz(), 4);
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(1, 0), 1.0);
        assert_eq!(a.get(0, 2), 0.0);
    }

    #[test]
    fn normalized_adjacency_row_properties() {
        let g = path_graph(3);
        let n = g.normalized_adjacency();
        // With self-loops every diagonal entry must be positive.
        for i in 0..3 {
            assert!(n.get(i, i) > 0.0);
        }
        let d = n.to_dense();
        grgad_linalg::assert_close(&d, &d.transpose(), 1e-6);
    }

    #[test]
    fn induced_subgraph_preserves_edges_and_features() {
        let mut g = Graph::new(
            5,
            Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0], &[4.0]]),
        );
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(3, 4);
        let (sub, mapping) = g.induced_subgraph(&[1, 2, 4]);
        assert_eq!(sub.num_nodes(), 3);
        assert_eq!(mapping, vec![1, 2, 4]);
        assert_eq!(sub.num_edges(), 1);
        assert!(sub.has_edge(0, 1)); // 1-2 in original
        assert_eq!(sub.features().row(2), &[4.0]);
    }

    #[test]
    fn induced_subgraph_ignores_duplicates() {
        let g = path_graph(4);
        let (sub, mapping) = g.induced_subgraph(&[2, 2, 3]);
        assert_eq!(sub.num_nodes(), 2);
        assert_eq!(mapping, vec![2, 3]);
        assert_eq!(sub.num_edges(), 1);
    }

    #[test]
    fn induced_subgraph_large_uses_map_path() {
        // exercise the >64-node branch
        let mut g = Graph::with_no_features(200);
        for i in 0..199 {
            g.add_edge(i, i + 1);
        }
        let nodes: Vec<usize> = (50..150).collect();
        let (sub, _) = g.induced_subgraph(&nodes);
        assert_eq!(sub.num_nodes(), 100);
        assert_eq!(sub.num_edges(), 99);
    }

    #[test]
    fn mutation_storm_preserves_invariants() {
        // Interleave every mutator; the per-mutation debug_asserts fire on
        // any broken invariant, and `validate` cross-checks the derived
        // edge counter at the end.
        let mut g = Graph::new(4, Matrix::zeros(4, 2));
        for (u, v) in [(0, 1), (2, 3), (1, 2), (0, 3), (0, 2)] {
            assert!(g.try_add_edge(u, v).expect("in range"));
        }
        assert!(!g.try_add_edge(1, 0).expect("duplicate is Ok(false)"));
        assert!(!g.try_add_edge(2, 2).expect("self-loop is Ok(false)"));
        assert!(g.try_remove_edge(0, 3).expect("in range"));
        assert!(!g.try_remove_edge(0, 3).expect("absent is Ok(false)"));
        let n = g.try_add_node(&[1.0, -1.0]).expect("finite features");
        assert!(g.try_add_edge(n, 0).expect("in range"));
        g.try_set_node_features(n, &[0.5, 0.5]).expect("in range");
        assert!(g.validate("mutation storm").is_ok());
        assert_eq!(g.num_edges(), 5);
        for u in 0..g.num_nodes() {
            assert!(g.neighbors(u).windows(2).all(|w| w[0] < w[1]));
        }
    }
}
