//! Configuration of the TP-GrGAD pipeline.

use grgad_gnn::{GaeConfig, ReconstructionTarget};
use grgad_outlier::{Ecod, Ensemble, IsolationForest, Lof, OutlierDetector, ZScore};
use grgad_sampling::SamplingConfig;
use grgad_tpgcl::TpgclConfig;

/// Which unsupervised outlier detector scores the group embeddings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DetectorKind {
    /// ECOD (the paper's default).
    Ecod,
    /// Sum-of-squared z-scores.
    ZScore,
    /// Local Outlier Factor.
    Lof,
    /// Isolation Forest.
    IsolationForest,
    /// SUOD-style rank-average ensemble of the above.
    Ensemble,
}

impl DetectorKind {
    /// Instantiates the detector.
    pub fn build(&self, seed: u64) -> Box<dyn OutlierDetector> {
        match self {
            DetectorKind::Ecod => Box::new(Ecod::new()),
            DetectorKind::ZScore => Box::new(ZScore::new()),
            DetectorKind::Lof => Box::new(Lof::new(10)),
            DetectorKind::IsolationForest => Box::new(IsolationForest::new(100, 64, seed)),
            DetectorKind::Ensemble => Box::new(Ensemble::suod_like(seed)),
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            DetectorKind::Ecod => "ECOD",
            DetectorKind::ZScore => "ZScore",
            DetectorKind::Lof => "LOF",
            DetectorKind::IsolationForest => "IsolationForest",
            DetectorKind::Ensemble => "Ensemble",
        }
    }
}

/// Full configuration of the TP-GrGAD pipeline.
#[derive(Clone, Debug)]
pub struct TpGrGadConfig {
    /// MH-GAE training hyperparameters.
    pub gae: GaeConfig,
    /// Structure-reconstruction target of MH-GAE (GraphSNN `Ã` by default;
    /// Table IV ablates `A`, `A³`, `A⁵`, `A⁷`).
    pub reconstruction_target: ReconstructionTarget,
    /// Fraction of nodes selected as anchors (0.1 in the paper).
    pub anchor_fraction: f32,
    /// Candidate-group sampling hyperparameters (Alg. 1).
    pub sampling: SamplingConfig,
    /// TPGCL hyperparameters (Alg. 2 + Eqn. 8).
    pub tpgcl: TpgclConfig,
    /// Whether the TPGCL stage is used at all; when `false` (the Table V
    /// ablation) each candidate group is represented by the mean of its
    /// nodes' raw attributes instead of a learned embedding.
    pub use_tpgcl: bool,
    /// Which outlier detector scores the group embeddings.
    pub detector: DetectorKind,
    /// Fraction of candidate groups reported as anomalous when the adaptive
    /// threshold is disabled (threshold `τ` realized as a top-fraction cutoff).
    pub contamination: f32,
    /// When `true` (default), the score threshold `τ` is set adaptively to
    /// `mean + adaptive_k · std` of the candidate scores, which tracks the
    /// clear score gap the detector produces instead of a fixed fraction.
    pub adaptive_threshold: bool,
    /// Number of standard deviations above the mean for the adaptive `τ`.
    pub adaptive_k: f32,
    /// Jaccard threshold used when matching candidates to ground truth during
    /// evaluation.
    pub match_jaccard: f32,
    /// Master RNG seed.
    pub seed: u64,
}

impl Default for TpGrGadConfig {
    fn default() -> Self {
        Self {
            gae: GaeConfig::default(),
            reconstruction_target: ReconstructionTarget::GraphSnn { lambda: 1.0 },
            anchor_fraction: 0.1,
            sampling: SamplingConfig::default(),
            tpgcl: TpgclConfig::default(),
            use_tpgcl: true,
            detector: DetectorKind::Ecod,
            contamination: 0.15,
            adaptive_threshold: true,
            adaptive_k: 1.0,
            match_jaccard: 0.5,
            seed: 0,
        }
    }
}

impl TpGrGadConfig {
    /// A reduced configuration that runs in seconds on small graphs — used by
    /// unit/integration tests and the quick experiment mode.
    pub fn fast() -> Self {
        let mut config = Self::default();
        config.gae.hidden_dim = 32;
        config.gae.embed_dim = 16;
        config.gae.epochs = 40;
        config.tpgcl.hidden_dim = 32;
        config.tpgcl.embed_dim = 16;
        config.tpgcl.mine_hidden_dim = 32;
        config.tpgcl.epochs = 15;
        config.tpgcl.max_training_groups = 96;
        config.sampling.max_anchor_pairs = 400;
        config.sampling.max_groups = 400;
        config
    }

    /// Propagates the master seed into every stage's seed field.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.gae.seed = seed;
        self.sampling.seed = seed.wrapping_add(1);
        self.tpgcl.seed = seed.wrapping_add(2);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detector_kinds_build_named_detectors() {
        for kind in [
            DetectorKind::Ecod,
            DetectorKind::ZScore,
            DetectorKind::Lof,
            DetectorKind::IsolationForest,
            DetectorKind::Ensemble,
        ] {
            let detector = kind.build(0);
            assert!(!detector.name().is_empty());
            assert!(!kind.name().is_empty());
        }
    }

    #[test]
    fn default_matches_paper_settings() {
        let config = TpGrGadConfig::default();
        assert_eq!(config.anchor_fraction, 0.1);
        assert_eq!(config.detector, DetectorKind::Ecod);
        assert_eq!(config.tpgcl.embed_dim, 64);
        assert!(matches!(
            config.reconstruction_target,
            ReconstructionTarget::GraphSnn { .. }
        ));
        assert!(config.use_tpgcl);
    }

    #[test]
    fn with_seed_propagates_to_stages() {
        let config = TpGrGadConfig::fast().with_seed(42);
        assert_eq!(config.seed, 42);
        assert_eq!(config.gae.seed, 42);
        assert_eq!(config.sampling.seed, 43);
        assert_eq!(config.tpgcl.seed, 44);
    }

    #[test]
    fn fast_preset_is_smaller_than_default() {
        let fast = TpGrGadConfig::fast();
        let full = TpGrGadConfig::default();
        assert!(fast.gae.epochs < full.gae.epochs);
        assert!(fast.tpgcl.embed_dim < full.tpgcl.embed_dim);
    }
}
