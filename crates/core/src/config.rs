//! Configuration of the TP-GrGAD pipeline.

use std::fmt;
use std::str::FromStr;

use grgad_error::GrgadError;
use grgad_gnn::{GaeConfig, ReconstructionTarget};
use grgad_outlier::{Ecod, Ensemble, IsolationForest, Lof, OutlierDetector, ZScore};
use grgad_sampling::SamplingConfig;
use grgad_tpgcl::TpgclConfig;

/// Which unsupervised outlier detector scores the group embeddings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DetectorKind {
    /// ECOD (the paper's default).
    Ecod,
    /// Sum-of-squared z-scores.
    ZScore,
    /// Local Outlier Factor.
    Lof,
    /// Isolation Forest.
    IsolationForest,
    /// SUOD-style rank-average ensemble of the above.
    Ensemble,
}

impl DetectorKind {
    /// All detector kinds, in the order used by the Table III matrix.
    pub const ALL: [DetectorKind; 5] = [
        DetectorKind::Ecod,
        DetectorKind::ZScore,
        DetectorKind::Lof,
        DetectorKind::IsolationForest,
        DetectorKind::Ensemble,
    ];

    /// Instantiates an unfitted detector.
    pub fn build(&self, seed: u64) -> Box<dyn OutlierDetector> {
        match self {
            DetectorKind::Ecod => Box::new(Ecod::new()),
            DetectorKind::ZScore => Box::new(ZScore::new()),
            DetectorKind::Lof => Box::new(Lof::new(10)),
            DetectorKind::IsolationForest => Box::new(IsolationForest::new(100, 64, seed)),
            DetectorKind::Ensemble => Box::new(Ensemble::suod_like(seed)),
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            DetectorKind::Ecod => "ECOD",
            DetectorKind::ZScore => "ZScore",
            DetectorKind::Lof => "LOF",
            DetectorKind::IsolationForest => "IsolationForest",
            DetectorKind::Ensemble => "Ensemble",
        }
    }
}

impl fmt::Display for DetectorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for DetectorKind {
    type Err = String;

    /// Parses a detector name case-insensitively; `iforest` and
    /// `isolation-forest` are accepted aliases, as used by the bench CLIs'
    /// `--detector` flag.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().replace(['-', '_'], "").as_str() {
            "ecod" => Ok(DetectorKind::Ecod),
            "zscore" => Ok(DetectorKind::ZScore),
            "lof" => Ok(DetectorKind::Lof),
            "iforest" | "isolationforest" => Ok(DetectorKind::IsolationForest),
            "ensemble" | "suod" => Ok(DetectorKind::Ensemble),
            other => Err(format!(
                "unknown detector `{other}` (expected one of: ecod, zscore, lof, iforest, ensemble)"
            )),
        }
    }
}

// String-based serde impls (the vendored derive does not cover enums).
impl serde::Serialize for DetectorKind {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.name().to_string())
    }
}

impl serde::Deserialize for DetectorKind {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let name = String::from_value(value)?;
        name.parse().map_err(serde::Error::custom)
    }
}

/// Full configuration of the TP-GrGAD pipeline.
///
/// Serde is hand-written (below) instead of derived for one reason:
/// `num_threads` is a machine-local performance knob and is deliberately
/// **not persisted** — a saved model must not pin the thread count of the
/// machine that loads it, and models saved before the field existed must
/// keep loading. Deserialization always resolves it fresh from the loading
/// process' environment.
#[derive(Clone, Debug)]
pub struct TpGrGadConfig {
    /// MH-GAE training hyperparameters.
    pub gae: GaeConfig,
    /// Structure-reconstruction target of MH-GAE (GraphSNN `Ã` by default;
    /// Table IV ablates `A`, `A³`, `A⁵`, `A⁷`).
    pub reconstruction_target: ReconstructionTarget,
    /// Fraction of nodes selected as anchors (0.1 in the paper).
    pub anchor_fraction: f32,
    /// Candidate-group sampling hyperparameters (Alg. 1).
    pub sampling: SamplingConfig,
    /// TPGCL hyperparameters (Alg. 2 + Eqn. 8).
    pub tpgcl: TpgclConfig,
    /// Whether the TPGCL stage is used at all; when `false` (the Table V
    /// ablation) each candidate group is represented by the mean of its
    /// nodes' raw attributes instead of a learned embedding.
    pub use_tpgcl: bool,
    /// Which outlier detector scores the group embeddings.
    pub detector: DetectorKind,
    /// Fraction of candidate groups reported as anomalous when the adaptive
    /// threshold is disabled (threshold `τ` realized as a top-fraction cutoff).
    pub contamination: f32,
    /// When `true` (default), the score threshold `τ` is set adaptively to
    /// `mean + adaptive_k · std` of the candidate scores, which tracks the
    /// clear score gap the detector produces instead of a fixed fraction.
    pub adaptive_threshold: bool,
    /// Number of standard deviations above the mean for the adaptive `τ`.
    pub adaptive_k: f32,
    /// Jaccard threshold used when matching candidates to ground truth during
    /// evaluation.
    pub match_jaccard: f32,
    /// Master RNG seed.
    pub seed: u64,
    /// Worker threads for the deterministic parallel backend
    /// (`grgad_parallel`). `0` means "default": defer to the `GRGAD_THREADS`
    /// environment variable, then [`std::thread::available_parallelism`] —
    /// so CI can force single- or multi-threaded runs without code changes.
    /// Applied process-wide on every `fit`/`score`/`score_groups` entry;
    /// results are bit-for-bit identical at any thread count, so this is
    /// purely a performance knob. **Not persisted** with saved models — a
    /// reloaded model resolves it from the loading machine's environment.
    pub num_threads: usize,
}

// Hand-written serde: every field except the machine-local `num_threads`
// round-trips; see the struct-level doc for why.
impl serde::Serialize for TpGrGadConfig {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("gae".to_string(), self.gae.to_value()),
            (
                "reconstruction_target".to_string(),
                self.reconstruction_target.to_value(),
            ),
            (
                "anchor_fraction".to_string(),
                self.anchor_fraction.to_value(),
            ),
            ("sampling".to_string(), self.sampling.to_value()),
            ("tpgcl".to_string(), self.tpgcl.to_value()),
            ("use_tpgcl".to_string(), self.use_tpgcl.to_value()),
            ("detector".to_string(), self.detector.to_value()),
            ("contamination".to_string(), self.contamination.to_value()),
            (
                "adaptive_threshold".to_string(),
                self.adaptive_threshold.to_value(),
            ),
            ("adaptive_k".to_string(), self.adaptive_k.to_value()),
            ("match_jaccard".to_string(), self.match_jaccard.to_value()),
            ("seed".to_string(), self.seed.to_value()),
        ])
    }
}

impl serde::Deserialize for TpGrGadConfig {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        use serde::Deserialize;
        Ok(Self {
            gae: Deserialize::from_value(value.field("gae")?)?,
            reconstruction_target: Deserialize::from_value(value.field("reconstruction_target")?)?,
            anchor_fraction: Deserialize::from_value(value.field("anchor_fraction")?)?,
            sampling: Deserialize::from_value(value.field("sampling")?)?,
            tpgcl: Deserialize::from_value(value.field("tpgcl")?)?,
            use_tpgcl: Deserialize::from_value(value.field("use_tpgcl")?)?,
            detector: Deserialize::from_value(value.field("detector")?)?,
            contamination: Deserialize::from_value(value.field("contamination")?)?,
            adaptive_threshold: Deserialize::from_value(value.field("adaptive_threshold")?)?,
            adaptive_k: Deserialize::from_value(value.field("adaptive_k")?)?,
            match_jaccard: Deserialize::from_value(value.field("match_jaccard")?)?,
            seed: Deserialize::from_value(value.field("seed")?)?,
            // Machine-local: resolved from the loading environment, never
            // from the snapshot.
            num_threads: default_num_threads(),
        })
    }
}

/// The default worker-thread request: `GRGAD_THREADS` when set and parsable,
/// otherwise `0` (defer to the backend's env-then-auto resolution). Shares
/// the backend's parser so the two layers cannot drift apart.
fn default_num_threads() -> usize {
    grgad_parallel::default_thread_request()
}

impl Default for TpGrGadConfig {
    fn default() -> Self {
        Self {
            gae: GaeConfig::default(),
            reconstruction_target: ReconstructionTarget::GraphSnn { lambda: 1.0 },
            anchor_fraction: 0.1,
            sampling: SamplingConfig::default(),
            tpgcl: TpgclConfig::default(),
            use_tpgcl: true,
            detector: DetectorKind::Ecod,
            contamination: 0.15,
            adaptive_threshold: true,
            adaptive_k: 1.0,
            match_jaccard: 0.5,
            seed: 0,
            num_threads: default_num_threads(),
        }
    }
}

impl TpGrGadConfig {
    /// Checks every field against its valid domain — the
    /// [`GrgadError::ConfigInvalid`] boundary `fit` runs before training
    /// starts, so a bad knob fails fast instead of producing NaNs or
    /// panicking mid-pipeline.
    pub fn validate(&self) -> Result<(), GrgadError> {
        let checks: [(bool, &str); 6] = [
            (
                self.anchor_fraction > 0.0 && self.anchor_fraction <= 1.0,
                "anchor_fraction must be in (0, 1]",
            ),
            (
                self.contamination > 0.0 && self.contamination <= 1.0,
                "contamination must be in (0, 1]",
            ),
            (self.adaptive_k.is_finite(), "adaptive_k must be finite"),
            (
                self.match_jaccard > 0.0 && self.match_jaccard <= 1.0,
                "match_jaccard must be in (0, 1]",
            ),
            (self.gae.epochs > 0, "gae.epochs must be at least 1"),
            (
                !self.use_tpgcl || self.tpgcl.epochs > 0,
                "tpgcl.epochs must be at least 1 when use_tpgcl is set",
            ),
        ];
        for (ok, message) in checks {
            if !ok {
                return Err(GrgadError::config(message));
            }
        }
        Ok(())
    }

    /// The paper's full-size configuration (identical to `Default`).
    pub fn paper() -> Self {
        Self::default()
    }

    /// A reduced configuration that runs in seconds on small graphs — used by
    /// unit/integration tests and the quick experiment mode.
    pub fn fast() -> Self {
        let mut config = Self::default();
        config.gae.hidden_dim = 32;
        config.gae.embed_dim = 16;
        config.gae.epochs = 40;
        config.tpgcl.hidden_dim = 32;
        config.tpgcl.embed_dim = 16;
        config.tpgcl.mine_hidden_dim = 32;
        config.tpgcl.epochs = 15;
        config.tpgcl.max_training_groups = 96;
        config.sampling.max_anchor_pairs = 400;
        config.sampling.max_groups = 400;
        config
    }

    /// A serving-oriented preset: the paper's model dimensions with reduced
    /// training epochs and capped sampling budgets, tuned for fitting once
    /// and scoring many snapshots with bounded per-request latency.
    pub fn serving() -> Self {
        let mut config = Self::default();
        config.gae.epochs = 60;
        config.tpgcl.epochs = 30;
        config.tpgcl.max_training_groups = 128;
        config.sampling.max_anchor_pairs = 800;
        config.sampling.max_groups = 600;
        config
    }

    /// Starts a fluent builder from the paper configuration.
    pub fn builder() -> TpGrGadConfigBuilder {
        TpGrGadConfigBuilder::new(Self::default())
    }

    /// Propagates the master seed into every stage's seed field.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.gae.seed = seed;
        self.sampling.seed = seed.wrapping_add(1);
        self.tpgcl.seed = seed.wrapping_add(2);
        self
    }
}

/// Fluent builder for [`TpGrGadConfig`] with preset starting points:
///
/// ```
/// use grgad_core::{DetectorKind, TpGrGadConfig};
///
/// let config = TpGrGadConfig::builder()
///     .fast()
///     .detector(DetectorKind::Ensemble)
///     .anchor_fraction(0.2)
///     .seed(7)
///     .build();
/// assert_eq!(config.detector, DetectorKind::Ensemble);
/// assert_eq!(config.gae.seed, 7); // seed propagated to every stage
/// ```
#[derive(Clone, Debug)]
pub struct TpGrGadConfigBuilder {
    config: TpGrGadConfig,
    seed: Option<u64>,
}

impl TpGrGadConfigBuilder {
    /// Starts from an explicit base configuration.
    pub fn new(config: TpGrGadConfig) -> Self {
        Self { config, seed: None }
    }

    /// Switches the base to the [`TpGrGadConfig::fast`] preset.
    pub fn fast(mut self) -> Self {
        self.config = TpGrGadConfig::fast();
        self
    }

    /// Switches the base to the [`TpGrGadConfig::paper`] preset.
    pub fn paper(mut self) -> Self {
        self.config = TpGrGadConfig::paper();
        self
    }

    /// Switches the base to the [`TpGrGadConfig::serving`] preset.
    pub fn serving(mut self) -> Self {
        self.config = TpGrGadConfig::serving();
        self
    }

    /// Sets the outlier detector scoring the group embeddings.
    pub fn detector(mut self, detector: DetectorKind) -> Self {
        self.config.detector = detector;
        self
    }

    /// Sets the MH-GAE structure-reconstruction target.
    pub fn reconstruction_target(mut self, target: ReconstructionTarget) -> Self {
        self.config.reconstruction_target = target;
        self
    }

    /// Sets the fraction of nodes selected as anchors.
    pub fn anchor_fraction(mut self, fraction: f32) -> Self {
        self.config.anchor_fraction = fraction;
        self
    }

    /// Enables/disables the TPGCL stage (Table V ablation when disabled).
    pub fn use_tpgcl(mut self, enabled: bool) -> Self {
        self.config.use_tpgcl = enabled;
        self
    }

    /// Sets the contamination fraction for the fixed-fraction threshold.
    pub fn contamination(mut self, contamination: f32) -> Self {
        self.config.contamination = contamination;
        self
    }

    /// Enables/disables the adaptive `mean + k·std` threshold.
    pub fn adaptive_threshold(mut self, enabled: bool) -> Self {
        self.config.adaptive_threshold = enabled;
        self
    }

    /// Sets `k` for the adaptive threshold.
    pub fn adaptive_k(mut self, k: f32) -> Self {
        self.config.adaptive_k = k;
        self
    }

    /// Sets the evaluation Jaccard matching threshold.
    pub fn match_jaccard(mut self, jaccard: f32) -> Self {
        self.config.match_jaccard = jaccard;
        self
    }

    /// Sets the MH-GAE training epochs.
    pub fn gae_epochs(mut self, epochs: usize) -> Self {
        self.config.gae.epochs = epochs;
        self
    }

    /// Sets the TPGCL training epochs.
    pub fn tpgcl_epochs(mut self, epochs: usize) -> Self {
        self.config.tpgcl.epochs = epochs;
        self
    }

    /// Caps the number of candidate groups the sampler may return.
    pub fn max_groups(mut self, max_groups: usize) -> Self {
        self.config.sampling.max_groups = max_groups;
        self
    }

    /// Sets the worker-thread count for the deterministic parallel backend
    /// (`0` = auto-detect hardware parallelism). Purely a performance knob:
    /// scores are bit-for-bit identical at any thread count.
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.config.num_threads = num_threads;
        self
    }

    /// Sets the master seed; propagated to every stage at `build`.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Finalizes the configuration, propagating the seed if one was set.
    pub fn build(self) -> TpGrGadConfig {
        match self.seed {
            Some(seed) => self.config.with_seed(seed),
            None => self.config,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detector_kinds_build_named_detectors() {
        for kind in DetectorKind::ALL {
            let detector = kind.build(0);
            assert!(!detector.name().is_empty());
            assert!(!kind.name().is_empty());
        }
    }

    #[test]
    fn detector_kind_display_from_str_round_trip() {
        for kind in DetectorKind::ALL {
            let parsed: DetectorKind = kind.to_string().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert_eq!(
            "iforest".parse::<DetectorKind>().unwrap(),
            DetectorKind::IsolationForest
        );
        assert_eq!(
            "isolation-forest".parse::<DetectorKind>().unwrap(),
            DetectorKind::IsolationForest
        );
        assert_eq!(
            "SUOD".parse::<DetectorKind>().unwrap(),
            DetectorKind::Ensemble
        );
        assert!("nope".parse::<DetectorKind>().is_err());
    }

    #[test]
    fn validate_accepts_presets_and_rejects_bad_domains() {
        for config in [
            TpGrGadConfig::default(),
            TpGrGadConfig::fast(),
            TpGrGadConfig::serving(),
        ] {
            assert!(config.validate().is_ok());
        }
        type Mutator = fn(&mut TpGrGadConfig);
        let cases: [(Mutator, &str); 5] = [
            (|c| c.anchor_fraction = 0.0, "anchor_fraction"),
            (|c| c.contamination = 1.5, "contamination"),
            (|c| c.adaptive_k = f32::NAN, "adaptive_k"),
            (|c| c.match_jaccard = 0.0, "match_jaccard"),
            (|c| c.gae.epochs = 0, "gae.epochs"),
        ];
        for (mutate, needle) in cases {
            let mut config = TpGrGadConfig::fast();
            mutate(&mut config);
            let err = config.validate().unwrap_err();
            assert!(matches!(err, GrgadError::ConfigInvalid { .. }));
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn default_matches_paper_settings() {
        let config = TpGrGadConfig::default();
        assert_eq!(config.anchor_fraction, 0.1);
        assert_eq!(config.detector, DetectorKind::Ecod);
        assert_eq!(config.tpgcl.embed_dim, 64);
        assert!(matches!(
            config.reconstruction_target,
            ReconstructionTarget::GraphSnn { .. }
        ));
        assert!(config.use_tpgcl);
    }

    #[test]
    fn with_seed_propagates_to_stages() {
        let config = TpGrGadConfig::fast().with_seed(42);
        assert_eq!(config.seed, 42);
        assert_eq!(config.gae.seed, 42);
        assert_eq!(config.sampling.seed, 43);
        assert_eq!(config.tpgcl.seed, 44);
    }

    #[test]
    fn fast_preset_is_smaller_than_default() {
        let fast = TpGrGadConfig::fast();
        let full = TpGrGadConfig::default();
        assert!(fast.gae.epochs < full.gae.epochs);
        assert!(fast.tpgcl.embed_dim < full.tpgcl.embed_dim);
    }

    #[test]
    fn serving_preset_trains_less_but_keeps_model_size() {
        let serving = TpGrGadConfig::serving();
        let paper = TpGrGadConfig::paper();
        assert!(serving.gae.epochs < paper.gae.epochs);
        assert!(serving.tpgcl.epochs < paper.tpgcl.epochs);
        assert_eq!(serving.tpgcl.embed_dim, paper.tpgcl.embed_dim);
        assert_eq!(serving.gae.embed_dim, paper.gae.embed_dim);
    }

    #[test]
    fn builder_without_seed_keeps_base_seeds() {
        let config = TpGrGadConfig::builder().fast().build();
        let fast = TpGrGadConfig::fast();
        assert_eq!(config.gae.seed, fast.gae.seed);
        assert_eq!(config.sampling.seed, fast.sampling.seed);
    }

    #[test]
    fn num_threads_defaults_and_builder_override() {
        // Default resolves from GRGAD_THREADS or falls back to auto (0).
        let default = TpGrGadConfig::default().num_threads;
        match std::env::var("GRGAD_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            Some(n) => assert_eq!(default, n),
            None => assert_eq!(default, 0),
        }
        let config = TpGrGadConfig::builder().fast().num_threads(3).build();
        assert_eq!(config.num_threads, 3);
    }

    #[test]
    fn builder_applies_every_setter() {
        let config = TpGrGadConfig::builder()
            .serving()
            .detector(DetectorKind::Lof)
            .reconstruction_target(ReconstructionTarget::KHop(3))
            .anchor_fraction(0.25)
            .use_tpgcl(false)
            .contamination(0.1)
            .adaptive_threshold(false)
            .adaptive_k(2.0)
            .match_jaccard(0.6)
            .gae_epochs(5)
            .tpgcl_epochs(4)
            .max_groups(50)
            .seed(9)
            .build();
        assert_eq!(config.detector, DetectorKind::Lof);
        assert_eq!(config.reconstruction_target, ReconstructionTarget::KHop(3));
        assert_eq!(config.anchor_fraction, 0.25);
        assert!(!config.use_tpgcl);
        assert_eq!(config.contamination, 0.1);
        assert!(!config.adaptive_threshold);
        assert_eq!(config.adaptive_k, 2.0);
        assert_eq!(config.match_jaccard, 0.6);
        assert_eq!(config.gae.epochs, 5);
        assert_eq!(config.tpgcl.epochs, 4);
        assert_eq!(config.sampling.max_groups, 50);
        assert_eq!(config.seed, 9);
        assert_eq!(config.gae.seed, 9);
        assert_eq!(config.sampling.seed, 10);
        assert_eq!(config.tpgcl.seed, 11);
    }

    /// `num_threads` is machine-local: it must not appear in serialized
    /// configs (a saved model must not pin the loading machine's thread
    /// count) and configs saved before the field existed must keep loading.
    #[test]
    fn num_threads_is_not_persisted() {
        let config = TpGrGadConfig::builder().fast().num_threads(7).build();
        let json = serde_json::to_string(&config).unwrap();
        assert!(
            !json.contains("num_threads"),
            "machine-local knob leaked into the snapshot: {json}"
        );
        let back: TpGrGadConfig = serde_json::from_str(&json).unwrap();
        // Resolved from the loading environment, not the snapshot.
        assert_eq!(back.num_threads, TpGrGadConfig::default().num_threads);
    }

    #[test]
    fn config_serde_round_trip() {
        let config = TpGrGadConfig::fast().with_seed(3);
        let json = serde_json::to_string_pretty(&config).unwrap();
        let back: TpGrGadConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.detector, config.detector);
        assert_eq!(back.seed, config.seed);
        assert_eq!(back.gae.epochs, config.gae.epochs);
        assert_eq!(back.tpgcl.embed_dim, config.tpgcl.embed_dim);
        assert_eq!(back.sampling.max_groups, config.sampling.max_groups);
        assert_eq!(back.reconstruction_target, config.reconstruction_target);
        assert_eq!(back.adaptive_k, config.adaptive_k);
    }
}
