//! The pipeline-stage seam: stage identity, per-stage timing reports, and the
//! observer hook that surfaces them.
//!
//! Every run of the pipeline — training ([`crate::TpGrGad::fit`]) or serving
//! ([`crate::TrainedTpGrGad::score`]) — executes the paper's four stages in
//! order. Each stage reports a [`StageTimings`] record to a
//! [`PipelineObserver`]: wall-clock time, how many items it processed and how
//! many training epochs it ran (always `0` on the serving path). The
//! `diagnose` experiment binary and the perf benchmarks consume these
//! reports; future batching/caching work hangs off the same seam.

use std::fmt;
use std::time::{Duration, Instant};

/// One of the four TP-GrGAD pipeline stages (Fig. 2 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PipelineStage {
    /// MH-GAE anchor localization.
    AnchorLocalization,
    /// Candidate-group sampling (Alg. 1).
    CandidateSampling,
    /// Group embedding (TPGCL, or the attribute-mean ablation).
    GroupEmbedding,
    /// Unsupervised outlier scoring of the group embeddings.
    OutlierScoring,
}

impl PipelineStage {
    /// All four stages in execution order.
    pub const ALL: [PipelineStage; 4] = [
        PipelineStage::AnchorLocalization,
        PipelineStage::CandidateSampling,
        PipelineStage::GroupEmbedding,
        PipelineStage::OutlierScoring,
    ];

    /// Short human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            PipelineStage::AnchorLocalization => "anchor_localization",
            PipelineStage::CandidateSampling => "candidate_sampling",
            PipelineStage::GroupEmbedding => "group_embedding",
            PipelineStage::OutlierScoring => "outlier_scoring",
        }
    }
}

impl fmt::Display for PipelineStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether a stage ran on the training path or the serving path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PipelinePhase {
    /// Inside [`crate::TpGrGad::fit`] (may train).
    Fit,
    /// Inside [`crate::TrainedTpGrGad::score`] (never trains).
    Score,
}

impl fmt::Display for PipelinePhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PipelinePhase::Fit => "fit",
            PipelinePhase::Score => "score",
        })
    }
}

/// Wall-clock and workload report for one stage execution.
#[derive(Clone, Debug)]
pub struct StageTimings {
    /// Which stage ran.
    pub stage: PipelineStage,
    /// Training or serving path.
    pub phase: PipelinePhase,
    /// Wall-clock duration of the stage.
    pub wall: Duration,
    /// Items processed (nodes for anchor localization, groups otherwise).
    pub items: usize,
    /// Gradient-descent epochs executed inside the stage (`0` when serving).
    pub train_epochs: usize,
    /// Resolved worker-thread cap of the deterministic parallel backend
    /// while the stage ran (`grgad_parallel::max_threads()`); `1` means the
    /// stage executed serially.
    pub threads: usize,
    /// Peak resident-set size of the process when the stage finished
    /// ([`peak_rss_bytes`]). A process-wide high-water mark, so it is
    /// monotone across stages; `None` where the platform does not expose it.
    pub peak_rss_bytes: Option<u64>,
}

/// The process' peak resident-set size (high-water mark) in bytes.
///
/// Reads `VmHWM` from `/proc/self/status` on Linux; returns `None` on other
/// platforms or when the file cannot be parsed. The value is process-wide
/// and monotone: it never decreases, so per-stage reports show the largest
/// footprint reached *up to* that stage.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
        let kib: u64 = line
            .trim_start_matches("VmHWM:")
            .trim()
            .trim_end_matches("kB")
            .trim()
            .parse()
            .ok()?;
        Some(kib * 1024)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Hook invoked after every pipeline stage completes.
///
/// Implementations must be cheap; they run inline on the pipeline's hot path.
pub trait PipelineObserver {
    /// Called once per completed stage, in execution order.
    fn on_stage(&mut self, timings: &StageTimings);
}

/// An observer that ignores every report (the default).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObserver;

impl PipelineObserver for NullObserver {
    fn on_stage(&mut self, _timings: &StageTimings) {}
}

/// An observer that records every report for later inspection.
#[derive(Clone, Debug, Default)]
pub struct TimingObserver {
    /// All reports received so far, in execution order.
    pub stages: Vec<StageTimings>,
}

impl TimingObserver {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total wall-clock time across all recorded stages.
    pub fn total_wall(&self) -> Duration {
        self.stages.iter().map(|s| s.wall).sum()
    }

    /// Total training epochs across all recorded stages (`0` proves a run
    /// never trained).
    pub fn total_train_epochs(&self) -> usize {
        self.stages.iter().map(|s| s.train_epochs).sum()
    }

    /// Largest peak-RSS report seen across the recorded stages, when the
    /// platform exposes one.
    pub fn max_peak_rss_bytes(&self) -> Option<u64> {
        self.stages.iter().filter_map(|s| s.peak_rss_bytes).max()
    }

    /// One-line-per-stage human-readable summary.
    pub fn summary(&self) -> String {
        self.stages
            .iter()
            .map(|s| {
                format!(
                    "{:>5}/{:<20} {:>8.1?} items={:<6} epochs={} threads={}",
                    s.phase.to_string(),
                    s.stage.to_string(),
                    s.wall,
                    s.items,
                    s.train_epochs,
                    s.threads
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl PipelineObserver for TimingObserver {
    fn on_stage(&mut self, timings: &StageTimings) {
        self.stages.push(timings.clone());
    }
}

/// Runs `body`, reports its timing to `observer`, and returns its value.
/// `body` returns `(value, items, train_epochs)`.
pub(crate) fn observe_stage<T>(
    observer: &mut dyn PipelineObserver,
    stage: PipelineStage,
    phase: PipelinePhase,
    body: impl FnOnce() -> (T, usize, usize),
) -> T {
    let start = Instant::now();
    let (value, items, train_epochs) = body();
    observer.on_stage(&StageTimings {
        stage,
        phase,
        wall: start.elapsed(),
        items,
        train_epochs,
        threads: grgad_parallel::max_threads(),
        peak_rss_bytes: peak_rss_bytes(),
    });
    value
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_stage_reports_to_observer() {
        let mut observer = TimingObserver::new();
        let out = observe_stage(
            &mut observer,
            PipelineStage::CandidateSampling,
            PipelinePhase::Score,
            || (42, 7, 0),
        );
        assert_eq!(out, 42);
        assert_eq!(observer.stages.len(), 1);
        let report = &observer.stages[0];
        assert_eq!(report.stage, PipelineStage::CandidateSampling);
        assert_eq!(report.phase, PipelinePhase::Score);
        assert_eq!(report.items, 7);
        assert_eq!(report.train_epochs, 0);
        assert!(report.threads >= 1, "thread count must be reported");
        assert!(observer.summary().contains("threads="));
        if cfg!(target_os = "linux") {
            assert!(
                report.peak_rss_bytes.unwrap_or(0) > 0,
                "Linux must report a peak RSS"
            );
            assert!(observer.max_peak_rss_bytes().unwrap_or(0) > 0);
        }
        assert_eq!(observer.total_train_epochs(), 0);
        assert!(!observer.summary().is_empty());
    }

    #[test]
    fn stage_names_are_stable() {
        let names: Vec<&str> = PipelineStage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "anchor_localization",
                "candidate_sampling",
                "group_embedding",
                "outlier_scoring"
            ]
        );
        assert_eq!(PipelinePhase::Fit.to_string(), "fit");
        assert_eq!(PipelinePhase::Score.to_string(), "score");
    }
}
