//! TP-GrGAD: the end-to-end Group-level Graph Anomaly Detection pipeline
//! proposed by the paper (Fig. 2).
//!
//! The pipeline has four stages ([`PipelineStage`]):
//!
//! 1. **Anchor localization** — a Multi-Hop Graph AutoEncoder
//!    ([`grgad_gnn::MhGae`]) is trained to reconstruct node attributes and a
//!    multi-hop structure target (GraphSNN `Ã` by default); the top-`p%`
//!    nodes by reconstruction error become anchor nodes.
//! 2. **Candidate group sampling** — paths, trees and cycles around the
//!    anchors are collected (Alg. 1, [`grgad_sampling`]).
//! 3. **TPGCL** — a contrastive group encoder is trained against PPA/PBA
//!    augmented views (Alg. 2 + Eqn. 8, [`grgad_tpgcl`]) and embeds every
//!    candidate group.
//! 4. **Outlier scoring** — an unsupervised detector (ECOD by default,
//!    [`grgad_outlier`]) scores the group embeddings; the top-scoring groups
//!    are reported as anomalies.
//!
//! The public API follows the sklearn/PyOD fit-once/score-many split:
//! [`TpGrGad::fit`] trains every learned stage once and returns a
//! [`TrainedTpGrGad`] artifact that scores arbitrarily many graphs/snapshots
//! ([`TrainedTpGrGad::score`], [`TrainedTpGrGad::score_groups`]) with zero
//! training epochs and persists itself as JSON
//! ([`TrainedTpGrGad::save`]/[`TrainedTpGrGad::load`]). The legacy
//! [`TpGrGad::detect`] remains as a thin `fit(g)?.score(g)` wrapper, and
//! [`TpGrGad::evaluate`] compares a run against a dataset's ground truth
//! with the paper's metrics (CR / F1 / AUC). Every stage reports wall-clock
//! and workload diagnostics through the [`PipelineObserver`] seam.
//!
//! Every fallible entry point returns `Result<_, `[`GrgadError`]`>`, with
//! input validated at the boundary ([`grgad_graph::Graph::validate`],
//! [`TrainedTpGrGad::check_compat`], [`TpGrGadConfig::validate`]) so the
//! panic sites inside the numeric stages are unreachable for input that
//! passed — the serving layer (`grgad-serve`) maps the error taxonomy
//! straight onto its wire protocol. [`IncrementalState`] is the seam that
//! layer uses to re-score evolving graphs incrementally with bit-identical
//! output: it persists cached reconstruction errors, memoized candidate
//! draws, and the [`GroupEmbeddingCache`] across
//! [`TrainedTpGrGad::score_incremental`] rounds, recomputing only inside
//! the dirty region (see DESIGN.md §8–9).

// The serving contract: no `unwrap()` on the core public path — every
// fallible surface returns `Result<_, GrgadError>` instead. Enforced here
// (and re-checked by the CI clippy job) rather than via command-line flags,
// which would also hit the vendored workspace members.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod config;
pub mod error;
pub mod incremental;
pub mod pipeline;
pub mod stage;

pub use config::{DetectorKind, TpGrGadConfig, TpGrGadConfigBuilder};
pub use error::GrgadError;
pub use incremental::{IncrementalState, IncrementalStats, ScoreMode};
pub use pipeline::{GroupEmbeddingCache, TpGrGad, TpGrGadResult, TrainedTpGrGad};
pub use stage::{
    peak_rss_bytes, NullObserver, PipelineObserver, PipelinePhase, PipelineStage, StageTimings,
    TimingObserver,
};
