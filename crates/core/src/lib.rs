//! TP-GrGAD: the end-to-end Group-level Graph Anomaly Detection pipeline
//! proposed by the paper (Fig. 2).
//!
//! The pipeline has four stages:
//!
//! 1. **Anchor localization** — a Multi-Hop Graph AutoEncoder
//!    ([`grgad_gnn::MhGae`]) is trained to reconstruct node attributes and a
//!    multi-hop structure target (GraphSNN `Ã` by default); the top-`p%`
//!    nodes by reconstruction error become anchor nodes.
//! 2. **Candidate group sampling** — paths, trees and cycles around the
//!    anchors are collected (Alg. 1, [`grgad_sampling`]).
//! 3. **TPGCL** — a contrastive group encoder is trained against PPA/PBA
//!    augmented views (Alg. 2 + Eqn. 8, [`grgad_tpgcl`]) and embeds every
//!    candidate group.
//! 4. **Outlier scoring** — an unsupervised detector (ECOD by default,
//!    [`grgad_outlier`]) scores the group embeddings; the top-scoring groups
//!    are reported as anomalies.
//!
//! [`TpGrGad::detect`] runs all four stages; [`TpGrGad::evaluate`] further
//! compares the result against a dataset's ground truth with the paper's
//! metrics (CR / F1 / AUC).

pub mod config;
pub mod pipeline;

pub use config::{DetectorKind, TpGrGadConfig};
pub use pipeline::{TpGrGad, TpGrGadResult};
