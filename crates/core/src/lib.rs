//! TP-GrGAD: the end-to-end Group-level Graph Anomaly Detection pipeline
//! proposed by the paper (Fig. 2).
//!
//! The pipeline has four stages ([`PipelineStage`]):
//!
//! 1. **Anchor localization** — a Multi-Hop Graph AutoEncoder
//!    ([`grgad_gnn::MhGae`]) is trained to reconstruct node attributes and a
//!    multi-hop structure target (GraphSNN `Ã` by default); the top-`p%`
//!    nodes by reconstruction error become anchor nodes.
//! 2. **Candidate group sampling** — paths, trees and cycles around the
//!    anchors are collected (Alg. 1, [`grgad_sampling`]).
//! 3. **TPGCL** — a contrastive group encoder is trained against PPA/PBA
//!    augmented views (Alg. 2 + Eqn. 8, [`grgad_tpgcl`]) and embeds every
//!    candidate group.
//! 4. **Outlier scoring** — an unsupervised detector (ECOD by default,
//!    [`grgad_outlier`]) scores the group embeddings; the top-scoring groups
//!    are reported as anomalies.
//!
//! The public API follows the sklearn/PyOD fit-once/score-many split:
//! [`TpGrGad::fit`] trains every learned stage once and returns a
//! [`TrainedTpGrGad`] artifact that scores arbitrarily many graphs/snapshots
//! ([`TrainedTpGrGad::score`], [`TrainedTpGrGad::score_groups`]) with zero
//! training epochs and persists itself as JSON
//! ([`TrainedTpGrGad::save`]/[`TrainedTpGrGad::load`]). The legacy
//! [`TpGrGad::detect`] remains as a thin `fit(g).score(g)` wrapper, and
//! [`TpGrGad::evaluate`] compares a run against a dataset's ground truth
//! with the paper's metrics (CR / F1 / AUC). Every stage reports wall-clock
//! and workload diagnostics through the [`PipelineObserver`] seam.

pub mod config;
pub mod pipeline;
pub mod stage;

pub use config::{DetectorKind, TpGrGadConfig, TpGrGadConfigBuilder};
pub use pipeline::{TpGrGad, TpGrGadResult, TrainedTpGrGad};
pub use stage::{
    peak_rss_bytes, NullObserver, PipelineObserver, PipelinePhase, PipelineStage, StageTimings,
    TimingObserver,
};
