//! The four-stage TP-GrGAD detection pipeline.

use grgad_datasets::GrGadDataset;
use grgad_gnn::MhGae;
use grgad_graph::{Graph, Group};
use grgad_linalg::Matrix;
use grgad_metrics::{evaluate_detection, DetectionReport};
use grgad_outlier::threshold_by_contamination;
use grgad_sampling::{sample_candidate_groups, SamplingStats};
use grgad_tpgcl::Tpgcl;

use crate::config::TpGrGadConfig;

/// Everything produced by one run of the pipeline.
#[derive(Clone, Debug)]
pub struct TpGrGadResult {
    /// Anchor nodes selected by MH-GAE.
    pub anchor_nodes: Vec<usize>,
    /// Per-node reconstruction errors from MH-GAE.
    pub node_errors: Vec<f32>,
    /// Candidate groups produced by Alg. 1.
    pub candidate_groups: Vec<Group>,
    /// Sampling bookkeeping.
    pub sampling_stats: SamplingStats,
    /// Group embeddings fed to the outlier detector (`m × d`).
    pub embeddings: Matrix,
    /// Anomaly score per candidate group (higher = more anomalous).
    pub scores: Vec<f32>,
    /// Whether each candidate group is reported as anomalous.
    pub predicted_anomalous: Vec<bool>,
}

impl TpGrGadResult {
    /// The groups reported as anomalous, paired with their scores, sorted by
    /// descending score — the `{C, S}` output of Definition 1.
    pub fn anomalous_groups(&self) -> Vec<(Group, f32)> {
        let mut out: Vec<(Group, f32)> = self
            .candidate_groups
            .iter()
            .zip(&self.scores)
            .zip(&self.predicted_anomalous)
            .filter(|(_, &flag)| flag)
            .map(|((g, &s), _)| (g.clone(), s))
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        out
    }
}

/// The TP-GrGAD detector.
pub struct TpGrGad {
    config: TpGrGadConfig,
}

impl TpGrGad {
    /// Creates a detector with the given configuration.
    pub fn new(config: TpGrGadConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TpGrGadConfig {
        &self.config
    }

    /// Runs the full pipeline on a graph.
    pub fn detect(&self, graph: &Graph) -> TpGrGadResult {
        // Stage 1: anchor localization with MH-GAE.
        let mut mhgae = MhGae::new(
            graph.feature_dim(),
            self.config.reconstruction_target,
            self.config.gae.clone(),
        );
        mhgae.fit(graph);
        let node_errors = mhgae.node_errors().combined.clone();
        let anchor_nodes = mhgae.anchor_nodes(self.config.anchor_fraction);

        // Stage 2: candidate-group sampling (Alg. 1).
        let (candidate_groups, sampling_stats) =
            sample_candidate_groups(graph, &anchor_nodes, &self.config.sampling);

        if candidate_groups.is_empty() {
            return TpGrGadResult {
                anchor_nodes,
                node_errors,
                candidate_groups,
                sampling_stats,
                embeddings: Matrix::zeros(0, 0),
                scores: Vec::new(),
                predicted_anomalous: Vec::new(),
            };
        }

        // Stage 3: group embeddings — TPGCL, or the raw-attribute-mean
        // ablation of Table V.
        let embeddings = if self.config.use_tpgcl {
            let mut tpgcl = Tpgcl::new(graph.feature_dim(), self.config.tpgcl.clone());
            tpgcl.fit(graph, &candidate_groups);
            tpgcl.embed_groups(graph, &candidate_groups)
        } else {
            mean_attribute_embeddings(graph, &candidate_groups)
        };

        // Stage 4: unsupervised outlier scoring of the group embeddings.
        let detector = self.config.detector.build(self.config.seed);
        let scores = detector.fit_score(&embeddings);
        let predicted_anomalous = if self.config.adaptive_threshold {
            adaptive_threshold(&scores, self.config.adaptive_k)
        } else {
            threshold_by_contamination(&scores, self.config.contamination)
        };

        TpGrGadResult {
            anchor_nodes,
            node_errors,
            candidate_groups,
            sampling_stats,
            embeddings,
            scores,
            predicted_anomalous,
        }
    }

    /// Runs the pipeline on a benchmark dataset and evaluates against its
    /// ground truth with the paper's metrics.
    pub fn evaluate(&self, dataset: &GrGadDataset) -> (TpGrGadResult, DetectionReport) {
        let result = self.detect(&dataset.graph);
        let report = evaluate_detection(
            &result.candidate_groups,
            &result.scores,
            &result.predicted_anomalous,
            &dataset.anomaly_groups,
            self.config.match_jaccard,
        );
        (result, report)
    }
}

/// Flags scores exceeding `mean + k · std`; falls back to flagging the single
/// top score if the rule flags nothing (so the detector always reports at
/// least one group, matching Definition 1's non-empty output).
fn adaptive_threshold(scores: &[f32], k: f32) -> Vec<bool> {
    if scores.is_empty() {
        return Vec::new();
    }
    let mean = grgad_linalg::stats::mean(scores);
    let std = grgad_linalg::stats::std_dev(scores);
    let tau = mean + k * std;
    let mut flags: Vec<bool> = scores.iter().map(|&s| s > tau).collect();
    if !flags.iter().any(|&f| f) {
        if let Some(best) = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        {
            flags[best.0] = true;
        }
    }
    flags
}

/// The Table V "w/o TPGCL" group representation: the mean of the group's raw
/// node-attribute vectors.
fn mean_attribute_embeddings(graph: &Graph, groups: &[Group]) -> Matrix {
    let d = graph.feature_dim();
    let mut out = Matrix::zeros(groups.len(), d);
    for (i, group) in groups.iter().enumerate() {
        if group.is_empty() || d == 0 {
            continue;
        }
        for &v in group.nodes() {
            for (j, &x) in graph.features().row(v).iter().enumerate() {
                out[(i, j)] += x;
            }
        }
        for j in 0..d {
            out[(i, j)] /= group.len() as f32;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use grgad_datasets::example;

    fn quick_detector(seed: u64) -> TpGrGad {
        TpGrGad::new(TpGrGadConfig::fast().with_seed(seed))
    }

    #[test]
    fn pipeline_produces_consistent_output_shapes() {
        let dataset = example::generate(36, 5);
        let result = quick_detector(1).detect(&dataset.graph);
        assert!(!result.anchor_nodes.is_empty());
        assert_eq!(result.node_errors.len(), dataset.graph.num_nodes());
        assert_eq!(result.candidate_groups.len(), result.scores.len());
        assert_eq!(
            result.candidate_groups.len(),
            result.predicted_anomalous.len()
        );
        assert_eq!(result.embeddings.rows(), result.candidate_groups.len());
        assert!(result.scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn anomalous_groups_are_sorted_by_score() {
        let dataset = example::generate(36, 6);
        let result = quick_detector(2).detect(&dataset.graph);
        let reported = result.anomalous_groups();
        assert!(!reported.is_empty());
        for pair in reported.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    }

    #[test]
    fn evaluate_reports_paper_metrics() {
        let dataset = example::generate(36, 7);
        let (_, report) = quick_detector(3).evaluate(&dataset);
        assert!(report.cr >= 0.0 && report.cr <= 1.0);
        assert!(report.f1 >= 0.0 && report.f1 <= 1.0);
        assert!(report.auc >= 0.0 && report.auc <= 1.0);
    }

    #[test]
    fn ablation_without_tpgcl_uses_attribute_means() {
        let dataset = example::generate(30, 8);
        let mut config = TpGrGadConfig::fast().with_seed(4);
        config.use_tpgcl = false;
        let result = TpGrGad::new(config).detect(&dataset.graph);
        assert_eq!(result.embeddings.cols(), dataset.graph.feature_dim());
    }

    #[test]
    fn pipeline_finds_planted_groups_better_than_chance() {
        // A larger background keeps the anomaly contamination realistic
        // (~13%), which the unsupervised outlier-scoring stage relies on.
        let dataset = example::generate(120, 11);
        let (_, report) = quick_detector(9).evaluate(&dataset);
        // With clearly separated planted groups the detector should beat a
        // random scorer by a comfortable margin on at least one axis.
        assert!(
            report.cr > 0.3 || report.auc > 0.55,
            "pipeline failed to beat chance: {report:?}"
        );
    }
}
