//! The four-stage TP-GrGAD detection pipeline, split into a *trainer*
//! ([`TpGrGad`]) and a *trained-model artifact* ([`TrainedTpGrGad`]).
//!
//! [`TpGrGad::fit`] trains MH-GAE, TPGCL and the outlier detector once on a
//! graph and returns a [`TrainedTpGrGad`] that can score arbitrarily many
//! graphs/snapshots with **zero training epochs**, score pre-sampled
//! candidate groups directly, and persist itself as JSON. The legacy
//! [`TpGrGad::detect`] is a thin `fit(g).score(g)` wrapper and produces
//! bit-for-bit identical output.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use grgad_datasets::GrGadDataset;
use grgad_error::GrgadError;
use grgad_gnn::{select_anchor_nodes, MhGae};
use grgad_graph::{Graph, Group};
use grgad_linalg::Matrix;
use grgad_metrics::{evaluate_detection, DetectionReport};
use grgad_outlier::{threshold_by_contamination, OutlierDetector};
use grgad_sampling::{sample_candidate_groups, sample_candidate_groups_cached, SamplingStats};
use grgad_tpgcl::Tpgcl;

use crate::config::TpGrGadConfig;
use crate::incremental::{IncrementalState, ScoreMode};
use crate::stage::{observe_stage, NullObserver, PipelineObserver, PipelinePhase, PipelineStage};

/// Everything produced by one scoring run of the pipeline.
#[derive(Clone, Debug)]
pub struct TpGrGadResult {
    /// Anchor nodes selected by MH-GAE.
    pub anchor_nodes: Vec<usize>,
    /// Per-node reconstruction errors from MH-GAE.
    pub node_errors: Vec<f32>,
    /// Candidate groups produced by Alg. 1.
    pub candidate_groups: Vec<Group>,
    /// Sampling bookkeeping.
    pub sampling_stats: SamplingStats,
    /// Group embeddings fed to the outlier detector (`m × d`).
    pub embeddings: Matrix,
    /// Anomaly score per candidate group (higher = more anomalous).
    pub scores: Vec<f32>,
    /// Whether each candidate group is reported as anomalous.
    pub predicted_anomalous: Vec<bool>,
}

impl TpGrGadResult {
    /// The groups reported as anomalous, paired with their scores, sorted by
    /// descending score — the `{C, S}` output of Definition 1. Groups are
    /// borrowed from the result rather than cloned.
    pub fn anomalous_groups(&self) -> Vec<(&Group, f32)> {
        let mut out: Vec<(&Group, f32)> = self
            .candidate_groups
            .iter()
            .zip(&self.scores)
            .zip(&self.predicted_anomalous)
            .filter(|(_, &flag)| flag)
            .map(|((g, &s), _)| (g, s))
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1));
        out
    }
}

/// The TP-GrGAD trainer: holds a configuration and fits trained-model
/// artifacts from graphs.
pub struct TpGrGad {
    config: TpGrGadConfig,
}

impl TpGrGad {
    /// Creates a detector with the given configuration.
    pub fn new(config: TpGrGadConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TpGrGadConfig {
        &self.config
    }

    /// Trains all learned stages on `graph` once and returns a reusable
    /// trained-model artifact. Equivalent to `fit_observed` with a no-op
    /// observer.
    ///
    /// # Errors
    /// [`GrgadError::ConfigInvalid`] when a configuration knob is outside
    /// its domain, [`GrgadError::EmptyGraph`] for a zero-node graph and
    /// [`GrgadError::NonFiniteInput`] for NaN/infinite node features —
    /// validated here at the boundary so the training stages never see
    /// malformed input.
    pub fn fit(&self, graph: &Graph) -> Result<TrainedTpGrGad, GrgadError> {
        self.fit_observed(graph, &mut NullObserver)
    }

    /// [`TpGrGad::fit`] with a [`PipelineObserver`] receiving per-stage
    /// timing/workload reports.
    pub fn fit_observed(
        &self,
        graph: &Graph,
        observer: &mut dyn PipelineObserver,
    ) -> Result<TrainedTpGrGad, GrgadError> {
        self.config.validate()?;
        graph.validate("fit")?;
        let config = &self.config;
        // Forward the configured thread budget to the deterministic parallel
        // backend; scores are identical at any thread count.
        grgad_parallel::set_max_threads(config.num_threads);

        // Stage 1: anchor localization — train MH-GAE.
        let mhgae = observe_stage(
            observer,
            PipelineStage::AnchorLocalization,
            PipelinePhase::Fit,
            || {
                let mut mhgae = MhGae::new(
                    graph.feature_dim(),
                    config.reconstruction_target,
                    config.gae.clone(),
                );
                mhgae.fit(graph);
                let epochs = mhgae.gae().loss_history().len();
                (mhgae, graph.num_nodes(), epochs)
            },
        );
        let anchor_nodes = mhgae.anchor_nodes(config.anchor_fraction);

        // Stage 2: candidate-group sampling (Alg. 1) — the TPGCL training set.
        let candidate_groups = observe_stage(
            observer,
            PipelineStage::CandidateSampling,
            PipelinePhase::Fit,
            || {
                let (groups, _) = sample_candidate_groups(graph, &anchor_nodes, &config.sampling);
                let n = groups.len();
                (groups, n, 0)
            },
        );

        // Stage 3: train the TPGCL group encoder and embed the training
        // candidates (or take attribute means for the Table V ablation).
        let (tpgcl, embeddings) = observe_stage(
            observer,
            PipelineStage::GroupEmbedding,
            PipelinePhase::Fit,
            || {
                let tpgcl = if config.use_tpgcl {
                    let mut tpgcl = Tpgcl::new(graph.feature_dim(), config.tpgcl.clone());
                    if !candidate_groups.is_empty() {
                        tpgcl.fit(graph, &candidate_groups);
                    }
                    Some(tpgcl)
                } else {
                    None
                };
                let embeddings =
                    embed_groups(tpgcl.as_ref(), graph, &candidate_groups, config.use_tpgcl);
                let epochs = tpgcl.as_ref().map_or(0, |t| t.loss_history().len());
                ((tpgcl, embeddings), candidate_groups.len(), epochs)
            },
        );

        // Stage 4: fit the unsupervised outlier detector on the training
        // embeddings (an empty fit yields a detector that scores zeros).
        let detector = observe_stage(
            observer,
            PipelineStage::OutlierScoring,
            PipelinePhase::Fit,
            || {
                let mut detector = config.detector.build(config.seed);
                detector.fit(&embeddings);
                (detector, embeddings.rows(), 0)
            },
        );

        Ok(TrainedTpGrGad {
            config: config.clone(),
            mhgae,
            tpgcl,
            detector,
        })
    }

    /// Legacy one-shot API: trains on `graph` and scores the same graph.
    ///
    /// Exactly equivalent to `self.fit(graph)?.score(graph)` — callers that
    /// score more than one graph (or the same graph repeatedly) should hold
    /// on to the [`TrainedTpGrGad`] from [`TpGrGad::fit`] instead of paying
    /// for retraining on every call.
    pub fn detect(&self, graph: &Graph) -> Result<TpGrGadResult, GrgadError> {
        self.fit(graph)?.score(graph)
    }

    /// Runs the pipeline on a benchmark dataset and evaluates against its
    /// ground truth with the paper's metrics.
    pub fn evaluate(
        &self,
        dataset: &GrGadDataset,
    ) -> Result<(TpGrGadResult, DetectionReport), GrgadError> {
        let result = self.detect(&dataset.graph)?;
        let report = evaluate_detection(
            &result.candidate_groups,
            &result.scores,
            &result.predicted_anomalous,
            &dataset.anomaly_groups,
            self.config.match_jaccard,
        );
        Ok((result, report))
    }
}

/// A reusable cache of group embeddings keyed by the group's canonical node
/// set — the seam the incremental serving engine uses to skip stage 3 (the
/// per-group GCN forward, the dominant score-path cost) for groups whose
/// members were untouched by graph deltas.
///
/// Correctness contract: a cached row is only valid while the group's
/// members keep their feature rows and induced edges; the owner must call
/// [`GroupEmbeddingCache::invalidate_nodes`] with every re-featured node
/// and [`GroupEmbeddingCache::invalidate_edge`] for every edge change. A
/// group's induced subgraph is only affected by an edge `(u, v)` when it
/// contains **both** endpoints, so edge invalidation is pairwise; feature
/// invalidation is per-member. Because the encoder embeds each group from
/// its induced subgraph alone, with per-group output slots independent of
/// batch composition, a valid cached row is bit-identical to a freshly
/// computed one — which is what makes [`TrainedTpGrGad::score_cached`]
/// exactly equal to [`TrainedTpGrGad::score`].
///
/// Rows cached under a different embedding dimension (a cache reused
/// across models) are treated as misses and overwritten, never copied, so
/// a shared cache cannot panic the scoring path. Size is bounded: after
/// each run, entries not belonging to the current candidate set are swept
/// once the cache exceeds a small multiple of the batch size, so a
/// long-running engine's memory tracks its working set instead of its
/// history.
#[derive(Debug, Default)]
pub struct GroupEmbeddingCache {
    entries: BTreeMap<Group, Vec<f32>>,
    hits: u64,
    misses: u64,
}

impl GroupEmbeddingCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached group embeddings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cache hits accumulated across scoring runs.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (fresh embeddings computed) across scoring runs.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drops every cached embedding (the full-re-score fallback).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Drops every cached group containing any of `nodes` — for mutations
    /// that change a node itself (feature updates, appended nodes).
    pub fn invalidate_nodes(&mut self, nodes: &[usize]) {
        if nodes.is_empty() || self.entries.is_empty() {
            return;
        }
        self.entries
            .retain(|group, _| !nodes.iter().any(|&v| group.contains(v)));
    }

    /// Drops every cached group containing **both** endpoints of a changed
    /// edge. A group's induced subgraph — the only graph state its
    /// embedding reads — is untouched by an edge whose other endpoint lies
    /// outside the group, so pairwise invalidation preserves bit-parity
    /// while evicting far less than per-endpoint invalidation would
    /// (hub endpoints in power-law graphs would otherwise flush most of
    /// the cache on every edge delta).
    pub fn invalidate_edge(&mut self, u: usize, v: usize) {
        self.invalidate_edges(&[(u, v)]);
    }

    /// Batch form of [`GroupEmbeddingCache::invalidate_edge`]: one pass
    /// over the cache for the whole dirty-edge set, instead of one full
    /// `retain` scan per edge (which would make invalidation
    /// `O(edges × entries)` on the serving hot path).
    pub fn invalidate_edges(&mut self, edges: &[(usize, usize)]) {
        if edges.is_empty() || self.entries.is_empty() {
            return;
        }
        self.entries.retain(|group, _| {
            !edges
                .iter()
                .any(|&(u, v)| group.contains(u) && group.contains(v))
        });
    }

    /// Cache contents as a serde tree — groups flattened to node-id lists
    /// so [`crate::IncrementalState`] can persist the cache without `Group`
    /// carrying serde impls.
    pub(crate) fn snapshot_value(&self) -> serde::Value {
        use serde::Serialize;
        let entries: Vec<(Vec<usize>, Vec<f32>)> = self
            .entries
            .iter()
            .map(|(group, row)| (group.nodes().to_vec(), row.clone()))
            .collect();
        serde::Value::Map(vec![
            ("entries".to_string(), entries.to_value()),
            ("hits".to_string(), self.hits.to_value()),
            ("misses".to_string(), self.misses.to_value()),
        ])
    }

    /// Inverse of [`GroupEmbeddingCache::snapshot_value`].
    pub(crate) fn from_snapshot_value(value: &serde::Value) -> Result<Self, serde::Error> {
        use serde::Deserialize;
        let raw = Vec::<(Vec<usize>, Vec<f32>)>::from_value(value.field("entries")?)?;
        let mut entries = BTreeMap::new();
        for (nodes, row) in raw {
            entries.insert(Group::new(nodes), row);
        }
        Ok(Self {
            entries,
            hits: u64::from_value(value.field("hits")?)?,
            misses: u64::from_value(value.field("misses")?)?,
        })
    }
}

/// A trained TP-GrGAD model: MH-GAE weights, the TPGCL group encoder and a
/// fitted outlier detector. Produced by [`TpGrGad::fit`]; scores any number
/// of graphs/snapshots without retraining and persists itself as JSON.
pub struct TrainedTpGrGad {
    config: TpGrGadConfig,
    mhgae: MhGae,
    tpgcl: Option<Tpgcl>,
    detector: Box<dyn OutlierDetector>,
}

impl std::fmt::Debug for TrainedTpGrGad {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrainedTpGrGad")
            .field("feature_dim", &self.mhgae.feature_dim())
            .field("detector", &self.detector.name())
            .field("use_tpgcl", &self.config.use_tpgcl)
            .finish_non_exhaustive()
    }
}

impl TrainedTpGrGad {
    /// The configuration the model was trained with.
    pub fn config(&self) -> &TpGrGadConfig {
        &self.config
    }

    /// The trained anchor localizer.
    pub fn mhgae(&self) -> &MhGae {
        &self.mhgae
    }

    /// The trained TPGCL model (`None` for the Table V ablation).
    pub fn tpgcl(&self) -> Option<&Tpgcl> {
        self.tpgcl.as_ref()
    }

    /// Name of the fitted outlier detector.
    pub fn detector_name(&self) -> &'static str {
        self.detector.name()
    }

    /// Checks that a graph is compatible with this trained model: same
    /// feature dimensionality as the training graph
    /// ([`GrgadError::ShapeMismatch`]) and valid pipeline input
    /// ([`Graph::validate`]: non-empty, finite features). Every scoring
    /// entry point runs this at the boundary, which is what makes the
    /// panic/assert sites inside the numeric stages unreachable for any
    /// graph that passed.
    pub fn check_compat(&self, graph: &Graph) -> Result<(), GrgadError> {
        graph.validate("score")?;
        if graph.feature_dim() != self.mhgae.feature_dim() {
            return Err(GrgadError::shape(
                "score: graph feature dim vs trained model",
                self.mhgae.feature_dim(),
                graph.feature_dim(),
            ));
        }
        Ok(())
    }

    /// Scores a graph with the trained model — zero training epochs.
    /// Equivalent to `score_observed` with a no-op observer.
    ///
    /// # Errors
    /// Whatever [`TrainedTpGrGad::check_compat`] rejects.
    pub fn score(&self, graph: &Graph) -> Result<TpGrGadResult, GrgadError> {
        self.score_observed(graph, &mut NullObserver)
    }

    /// [`TrainedTpGrGad::score`] reusing cached group embeddings for
    /// candidate groups whose members are untouched since they were cached —
    /// the incremental serving path. Produces output bit-identical to
    /// [`TrainedTpGrGad::score`] provided the cache-owner honoured the
    /// invalidation contract ([`GroupEmbeddingCache::invalidate_nodes`] on
    /// every mutated node); the cache is refreshed with this run's
    /// embeddings on return.
    #[deprecated(note = "use `score_incremental`, which also reuses node errors, \
                anchors and candidate draws and tracks dirt itself")]
    pub fn score_cached(
        &self,
        graph: &Graph,
        cache: &mut GroupEmbeddingCache,
    ) -> Result<TpGrGadResult, GrgadError> {
        self.score_impl(graph, &mut NullObserver, Some(cache))
    }

    /// [`TrainedTpGrGad::score_cached`] with a [`PipelineObserver`]
    /// receiving per-stage timing/workload reports — the serving host's
    /// incremental path with telemetry attached. Observation never touches
    /// the numeric path: results stay bit-identical to
    /// [`TrainedTpGrGad::score_cached`] under the same cache state.
    #[deprecated(note = "use `score_incremental_observed`, which also reuses node \
                errors, anchors and candidate draws and tracks dirt itself")]
    pub fn score_cached_observed(
        &self,
        graph: &Graph,
        cache: &mut GroupEmbeddingCache,
        observer: &mut dyn PipelineObserver,
    ) -> Result<TpGrGadResult, GrgadError> {
        self.score_impl(graph, observer, Some(cache))
    }

    /// [`TrainedTpGrGad::score`] with a [`PipelineObserver`] receiving
    /// per-stage timing/workload reports (every report has
    /// `train_epochs == 0`).
    pub fn score_observed(
        &self,
        graph: &Graph,
        observer: &mut dyn PipelineObserver,
    ) -> Result<TpGrGadResult, GrgadError> {
        self.score_impl(graph, observer, None)
    }

    /// Scores an evolving graph by patching the cached state in `state`
    /// instead of recomputing the pipeline — the delta re-scoring path.
    /// Equivalent to `score_incremental_observed` with a no-op observer.
    ///
    /// Callers record every mutation with [`IncrementalState::mark_node`] /
    /// [`IncrementalState::mark_edge`] between scores; this method then
    /// re-runs only dirty-region work at each level (reconstruction errors
    /// on the GCN receptive-field ball, candidate draws through touched
    /// topology, embeddings of touched groups) and consumes the recorded
    /// dirt. The result is **bit-identical** to [`TrainedTpGrGad::score`]
    /// on the same graph — DESIGN.md §9 states the invariant, and
    /// `tests/incremental_parity.rs` plus the low-churn property test pin
    /// it across seeds and thread counts.
    ///
    /// A cold state, an [`IncrementalState::invalidate`]d state, or a dirty
    /// fraction above [`IncrementalState::max_dirty_fraction`] falls back
    /// to a full recompute (reported as [`ScoreMode::Full`]) that refills
    /// every cache, so the next round patches again.
    ///
    /// # Errors
    /// Whatever [`TrainedTpGrGad::check_compat`] rejects. On error the
    /// state is untouched: recorded dirt stays pending.
    pub fn score_incremental(
        &self,
        graph: &Graph,
        state: &mut IncrementalState,
    ) -> Result<(TpGrGadResult, ScoreMode), GrgadError> {
        self.score_incremental_observed(graph, state, &mut NullObserver)
    }

    /// [`TrainedTpGrGad::score_incremental`] with a [`PipelineObserver`]
    /// receiving per-stage timing/workload reports. Stage-1 reports carry
    /// the number of nodes actually re-scored (the dirty hop ball) rather
    /// than the node count; observation never touches the numeric path.
    pub fn score_incremental_observed(
        &self,
        graph: &Graph,
        state: &mut IncrementalState,
        observer: &mut dyn PipelineObserver,
    ) -> Result<(TpGrGadResult, ScoreMode), GrgadError> {
        self.check_compat(graph)?;
        let config = &self.config;
        grgad_parallel::set_max_threads(config.num_threads);

        // Mode decision: the dirty-node fraction (touched nodes over the
        // current node count) gates patching — past the threshold the hop
        // balls cover most of the graph and patching costs more than it
        // saves, so recompute everything and refill the caches instead.
        let touched = state.dirty.touched_nodes();
        let n = graph.num_nodes();
        let fraction = if n == 0 {
            1.0
        } else {
            touched.len() as f32 / n as f32
        };
        let mode = if state.errors.is_none() || fraction > state.max_dirty_fraction {
            ScoreMode::Full
        } else {
            ScoreMode::Incremental
        };
        if mode == ScoreMode::Full {
            state.errors = None;
            state.draws.clear();
            state.embeddings.clear();
        }
        let (dirty_nodes, topology_dirty): (BTreeSet<usize>, BTreeSet<usize>) = match mode {
            ScoreMode::Full => (BTreeSet::new(), BTreeSet::new()),
            ScoreMode::Incremental => (touched, state.dirty.topology_nodes()),
        };

        // Stage 1: anchor localization — reconstruction errors patched on
        // the receptive-field hop ball of the dirty set (with the target
        // rebuild skipped entirely on feature-only rounds), anchor
        // selection re-run on the (cheap) full error vector.
        let (anchor_nodes, node_errors, rescored) = observe_stage(
            observer,
            PipelineStage::AnchorLocalization,
            PipelinePhase::Score,
            || {
                let (errors, rescored) = self.mhgae.infer_errors_cached(
                    graph,
                    &mut state.errors,
                    &dirty_nodes,
                    &topology_dirty,
                );
                let node_errors = errors.combined;
                let anchors = select_anchor_nodes(&node_errors, config.anchor_fraction);
                ((anchors, node_errors, rescored), rescored, 0)
            },
        );
        state.nodes_rescored += rescored as u64;
        state.record_anchor_reuse(&anchor_nodes);

        // Stage 2: candidate sampling — prune draws whose search region
        // touches dirty topology, then replay Alg. 1 through the memo
        // (bit-identical because draws never consume RNG).
        if mode == ScoreMode::Incremental {
            state.draws.prune(graph, &topology_dirty, &config.sampling);
        }
        let (candidate_groups, sampling_stats) = observe_stage(
            observer,
            PipelineStage::CandidateSampling,
            PipelinePhase::Score,
            || {
                let (groups, stats) = sample_candidate_groups_cached(
                    graph,
                    &anchor_nodes,
                    &config.sampling,
                    &mut state.draws,
                );
                let count = groups.len();
                ((groups, stats), count, 0)
            },
        );

        // Level 3 invalidation, then consume the dirt: per-member for node
        // dirt, pairwise for edge dirt (an edge whose other endpoint lies
        // outside a group cannot change that group's induced subgraph).
        if mode == ScoreMode::Incremental {
            let nodes: Vec<usize> = state.dirty.nodes().iter().copied().collect();
            let edges: Vec<(usize, usize)> = state.dirty.edges().iter().copied().collect();
            state.embeddings.invalidate_nodes(&nodes);
            state.embeddings.invalidate_edges(&edges);
        }
        state.dirty.clear();
        match mode {
            ScoreMode::Incremental => state.scores_incremental += 1,
            ScoreMode::Full => state.scores_full += 1,
        }

        if candidate_groups.is_empty() {
            return Ok((
                TpGrGadResult {
                    anchor_nodes,
                    node_errors,
                    candidate_groups,
                    sampling_stats,
                    embeddings: Matrix::zeros(0, 0),
                    scores: Vec::new(),
                    predicted_anomalous: Vec::new(),
                },
                mode,
            ));
        }

        // Stage 3: embed candidates, reusing every surviving cached row.
        let embeddings = observe_stage(
            observer,
            PipelineStage::GroupEmbedding,
            PipelinePhase::Score,
            || {
                let z = embed_groups_cached(
                    self.tpgcl.as_ref(),
                    graph,
                    &candidate_groups,
                    config.use_tpgcl,
                    &mut state.embeddings,
                );
                (z, candidate_groups.len(), 0)
            },
        );

        // Stage 4: score with the fitted detector and threshold.
        let (scores, predicted_anomalous) = observe_stage(
            observer,
            PipelineStage::OutlierScoring,
            PipelinePhase::Score,
            || {
                let scores = self.detector.score(&embeddings);
                let flags = self.apply_threshold(&scores);
                let count = scores.len();
                ((scores, flags), count, 0)
            },
        );

        Ok((
            TpGrGadResult {
                anchor_nodes,
                node_errors,
                candidate_groups,
                sampling_stats,
                embeddings,
                scores,
                predicted_anomalous,
            },
            mode,
        ))
    }

    fn score_impl(
        &self,
        graph: &Graph,
        observer: &mut dyn PipelineObserver,
        cache: Option<&mut GroupEmbeddingCache>,
    ) -> Result<TpGrGadResult, GrgadError> {
        self.check_compat(graph)?;
        let config = &self.config;
        grgad_parallel::set_max_threads(config.num_threads);

        // Stage 1: anchor localization — forward pass only.
        let (anchor_nodes, node_errors) = observe_stage(
            observer,
            PipelineStage::AnchorLocalization,
            PipelinePhase::Score,
            || {
                let node_errors = self.mhgae.infer_errors(graph).combined;
                let anchors = select_anchor_nodes(&node_errors, config.anchor_fraction);
                ((anchors, node_errors), graph.num_nodes(), 0)
            },
        );

        // Stage 2: candidate-group sampling (Alg. 1).
        let (candidate_groups, sampling_stats) = observe_stage(
            observer,
            PipelineStage::CandidateSampling,
            PipelinePhase::Score,
            || {
                let (groups, stats) =
                    sample_candidate_groups(graph, &anchor_nodes, &config.sampling);
                let n = groups.len();
                ((groups, stats), n, 0)
            },
        );

        if candidate_groups.is_empty() {
            return Ok(TpGrGadResult {
                anchor_nodes,
                node_errors,
                candidate_groups,
                sampling_stats,
                embeddings: Matrix::zeros(0, 0),
                scores: Vec::new(),
                predicted_anomalous: Vec::new(),
            });
        }

        // Stage 3: embed the candidate groups with the trained encoder,
        // reusing cached rows for groups untouched since they were cached.
        let embeddings = observe_stage(
            observer,
            PipelineStage::GroupEmbedding,
            PipelinePhase::Score,
            || {
                let z = match cache {
                    Some(cache) => embed_groups_cached(
                        self.tpgcl.as_ref(),
                        graph,
                        &candidate_groups,
                        config.use_tpgcl,
                        cache,
                    ),
                    None => embed_groups(
                        self.tpgcl.as_ref(),
                        graph,
                        &candidate_groups,
                        config.use_tpgcl,
                    ),
                };
                (z, candidate_groups.len(), 0)
            },
        );

        // Stage 4: score with the fitted detector and threshold.
        let (scores, predicted_anomalous) = observe_stage(
            observer,
            PipelineStage::OutlierScoring,
            PipelinePhase::Score,
            || {
                let scores = self.detector.score(&embeddings);
                let flags = self.apply_threshold(&scores);
                let n = scores.len();
                ((scores, flags), n, 0)
            },
        );

        Ok(TpGrGadResult {
            anchor_nodes,
            node_errors,
            candidate_groups,
            sampling_stats,
            embeddings,
            scores,
            predicted_anomalous,
        })
    }

    /// Scores pre-sampled candidate groups directly, skipping anchor
    /// localization and sampling — the serving path for callers that manage
    /// their own candidates. Returns one anomaly score per group (higher =
    /// more anomalous); pair with [`TrainedTpGrGad::apply_threshold`] for
    /// binary predictions.
    ///
    /// With [`crate::DetectorKind::Ensemble`] the scores are rank-normalized
    /// *within the scored batch* (the SUOD combination rule), so they are
    /// comparable inside one call but not across calls — score related
    /// candidates together rather than one at a time.
    ///
    /// # Errors
    /// Whatever [`TrainedTpGrGad::check_compat`] rejects, plus
    /// [`GrgadError::EmptyGroup`] for a group with no nodes and
    /// [`GrgadError::InvalidNodeId`] for a member id at or beyond the
    /// graph's node count. `Group`s canonicalize (sort + dedup) their node
    /// ids on construction, so duplicate ids supplied by a caller are
    /// deduplicated before they reach this boundary rather than silently
    /// double-counted — callers holding raw id lists should build groups
    /// with `Group::try_new(ids, graph.num_nodes())`.
    pub fn score_groups(&self, graph: &Graph, groups: &[Group]) -> Result<Vec<f32>, GrgadError> {
        self.check_compat(graph)?;
        for group in groups {
            group.validate(graph.num_nodes(), "score_groups")?;
        }
        if groups.is_empty() {
            return Ok(Vec::new());
        }
        grgad_parallel::set_max_threads(self.config.num_threads);
        let embeddings = embed_groups(self.tpgcl.as_ref(), graph, groups, self.config.use_tpgcl);
        Ok(self.detector.score(&embeddings))
    }

    /// Converts scores into binary predictions with the configured threshold
    /// (adaptive `mean + k·std`, or top-contamination fraction).
    pub fn apply_threshold(&self, scores: &[f32]) -> Vec<bool> {
        if self.config.adaptive_threshold {
            adaptive_threshold(scores, self.config.adaptive_k)
        } else {
            threshold_by_contamination(scores, self.config.contamination)
        }
    }

    /// Serializes the trained model (config + all weights + detector state)
    /// as a JSON string. [`TrainedTpGrGad::from_json`] restores a model that
    /// reproduces the original scores exactly.
    ///
    /// # Errors
    /// [`GrgadError::ModelIo`] (with path `"<memory>"`) when the model
    /// state cannot be rendered.
    pub fn to_json(&self) -> Result<String, GrgadError> {
        serde_json::to_string_pretty(&self.to_value())
            .map_err(|e| GrgadError::model_io(IN_MEMORY, e))
    }

    fn to_value(&self) -> serde::Value {
        use serde::Serialize;
        serde::Value::Map(vec![
            (
                "format".to_string(),
                serde::Value::Str(MODEL_FORMAT.to_string()),
            ),
            ("config".to_string(), self.config.to_value()),
            (
                "feature_dim".to_string(),
                self.mhgae.feature_dim().to_value(),
            ),
            (
                "mhgae_weights".to_string(),
                self.mhgae.export_weights().to_value(),
            ),
            (
                "tpgcl_weights".to_string(),
                self.tpgcl
                    .as_ref()
                    .map(|t| t.encoder().export_weights())
                    .to_value(),
            ),
            (
                "detector".to_string(),
                serde::Value::Map(vec![
                    (
                        "name".to_string(),
                        serde::Value::Str(self.detector.name().to_string()),
                    ),
                    ("state".to_string(), self.detector.save_state()),
                ]),
            ),
        ])
    }

    /// Restores a trained model from a [`TrainedTpGrGad::to_json`] string.
    ///
    /// # Errors
    /// [`GrgadError::ModelIo`] (with path `"<memory>"`) for malformed,
    /// truncated or wrong-format JSON and detector-state mismatches.
    pub fn from_json(json: &str) -> Result<Self, GrgadError> {
        Self::from_json_at(json, IN_MEMORY)
    }

    /// [`TrainedTpGrGad::from_json`] reporting errors against a named
    /// source path (what [`TrainedTpGrGad::load`] uses, so a bad file is
    /// identified by name).
    fn from_json_at(json: &str, source: &str) -> Result<Self, GrgadError> {
        Self::from_value_tree(json).map_err(|e| GrgadError::model_io(source, e))
    }

    /// Checks a loaded weight snapshot against the freshly constructed
    /// architecture's own export (matrix count and every shape) before any
    /// `import_weights` call — the import paths assert on mismatch, and a
    /// malformed-but-well-formed-JSON artifact must surface as a typed
    /// `ModelIo` error rather than crash a serving process.
    fn check_snapshot_shapes(
        context: &str,
        expected: &[Matrix],
        got: &[Matrix],
    ) -> Result<(), serde::Error> {
        if expected.len() != got.len() {
            return Err(serde::Error::custom(format!(
                "{context}: expected {} weight matrices, got {}",
                expected.len(),
                got.len()
            )));
        }
        for (i, (e, g)) in expected.iter().zip(got).enumerate() {
            if e.shape() != g.shape() {
                return Err(serde::Error::custom(format!(
                    "{context}: weight matrix {i} has shape {:?}, expected {:?}",
                    g.shape(),
                    e.shape()
                )));
            }
        }
        Ok(())
    }

    fn from_value_tree(json: &str) -> Result<Self, serde::Error> {
        use serde::Deserialize;
        let value: serde::Value = serde_json::from_str(json)?;
        let format = String::from_value(value.field("format")?)?;
        if format != MODEL_FORMAT {
            return Err(serde::Error::custom(format!(
                "unsupported model format `{format}` (expected `{MODEL_FORMAT}`)"
            )));
        }
        let config = TpGrGadConfig::from_value(value.field("config")?)?;
        // A loaded artifact is untrusted input: its config must satisfy the
        // same domain checks `fit` enforces, or scoring runs with
        // nonsensical knobs.
        config
            .validate()
            .map_err(|e| serde::Error::custom(e.to_string()))?;
        let feature_dim = usize::from_value(value.field("feature_dim")?)?;

        let mhgae = MhGae::new(
            feature_dim,
            config.reconstruction_target,
            config.gae.clone(),
        );
        let mhgae_weights = Vec::<Matrix>::from_value(value.field("mhgae_weights")?)?;
        Self::check_snapshot_shapes("mhgae_weights", &mhgae.export_weights(), &mhgae_weights)?;
        mhgae.import_weights(&mhgae_weights);

        let tpgcl = if config.use_tpgcl {
            let weights = Vec::<Matrix>::from_value(value.field("tpgcl_weights")?)?;
            let tpgcl = Tpgcl::new(feature_dim, config.tpgcl.clone());
            Self::check_snapshot_shapes(
                "tpgcl_weights",
                &tpgcl.encoder().export_weights(),
                &weights,
            )?;
            tpgcl.encoder().import_weights(&weights);
            Some(tpgcl)
        } else {
            None
        };

        let detector_value = value.field("detector")?;
        let name = String::from_value(detector_value.field("name")?)?;
        let mut detector = config.detector.build(config.seed);
        if name != detector.name() {
            return Err(serde::Error::custom(format!(
                "detector state `{name}` does not match configured `{}`",
                detector.name()
            )));
        }
        detector.load_state(detector_value.field("state")?)?;

        Ok(Self {
            config,
            mhgae,
            tpgcl,
            detector,
        })
    }

    /// Writes the model as JSON to `path`.
    ///
    /// # Errors
    /// [`GrgadError::ModelIo`] carrying the path and the underlying cause.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), GrgadError> {
        let path = path.as_ref();
        let json = self.to_json()?;
        std::fs::write(path, json).map_err(|e| GrgadError::model_io(path.display().to_string(), e))
    }

    /// Reads a model saved by [`TrainedTpGrGad::save`].
    ///
    /// # Errors
    /// [`GrgadError::ModelIo`] carrying the path and the underlying cause
    /// (missing file, truncated/malformed JSON, wrong format tag or a
    /// detector-state mismatch).
    pub fn load(path: impl AsRef<Path>) -> Result<Self, GrgadError> {
        let path = path.as_ref();
        let json = std::fs::read_to_string(path)
            .map_err(|e| GrgadError::model_io(path.display().to_string(), e))?;
        Self::from_json_at(&json, &path.display().to_string())
    }
}

/// Identifier stored in saved models; bump on breaking layout changes.
const MODEL_FORMAT: &str = "tp-grgad-model/v1";

/// Path label for in-memory (de)serialization failures.
const IN_MEMORY: &str = "<memory>";

/// [`embed_groups`] splitting the batch into cache hits and misses: only
/// missing groups pay the per-group GCN forward; the assembled matrix is
/// bit-identical to embedding everything fresh because each row of
/// `embed_groups`' output depends only on its own group's induced subgraph
/// (per-group output slots, batch-composition-independent). The cache is
/// updated with this run's fresh rows.
fn embed_groups_cached(
    tpgcl: Option<&Tpgcl>,
    graph: &Graph,
    groups: &[Group],
    use_tpgcl: bool,
    cache: &mut GroupEmbeddingCache,
) -> Matrix {
    if groups.is_empty() {
        return Matrix::zeros(0, 0);
    }
    // This model's embedding width, known up front so rows cached by a
    // *different* model (wrong width) count as misses and get overwritten
    // instead of reaching `copy_from_slice` and panicking.
    let dim = match (use_tpgcl, tpgcl) {
        (true, Some(model)) => model.encoder().embed_dim(),
        (true, None) => unreachable!("use_tpgcl set but no TPGCL model present"),
        (false, _) => graph.feature_dim(),
    };
    let miss_indices: Vec<usize> = (0..groups.len())
        .filter(|&i| {
            cache
                .entries
                .get(&groups[i])
                .is_none_or(|row| row.len() != dim)
        })
        .collect();
    cache.hits += (groups.len() - miss_indices.len()) as u64;
    cache.misses += miss_indices.len() as u64;

    let miss_groups: Vec<Group> = miss_indices.iter().map(|&i| groups[i].clone()).collect();
    let fresh = embed_groups(tpgcl, graph, &miss_groups, use_tpgcl);
    for (slot, &i) in miss_indices.iter().enumerate() {
        cache
            .entries
            .insert(groups[i].clone(), fresh.row(slot).to_vec());
    }

    let mut out = Matrix::zeros(groups.len(), dim);
    for (i, group) in groups.iter().enumerate() {
        if let Some(row) = cache.entries.get(group) {
            out.row_mut(i).copy_from_slice(row);
        }
    }

    // Bound the cache to the working set: entries for groups outside the
    // current candidate batch are only worth keeping while the candidate
    // set oscillates, so once the cache outgrows the batch by a comfortable
    // factor, sweep the strangers. Without this a long-running engine
    // accumulates embeddings for groups that will never be candidates
    // again (unbounded RSS).
    if cache.entries.len() > 4 * groups.len() + 64 {
        let current: std::collections::BTreeSet<&Group> = groups.iter().collect();
        cache.entries.retain(|group, _| current.contains(group));
    }
    out
}

/// Embeds groups with the trained TPGCL encoder, or with the Table V
/// "w/o TPGCL" attribute-mean ablation.
fn embed_groups(tpgcl: Option<&Tpgcl>, graph: &Graph, groups: &[Group], use_tpgcl: bool) -> Matrix {
    if groups.is_empty() {
        return Matrix::zeros(0, 0);
    }
    match (use_tpgcl, tpgcl) {
        (true, Some(model)) => model.embed_groups(graph, groups),
        (true, None) => unreachable!("use_tpgcl set but no TPGCL model present"),
        (false, _) => mean_attribute_embeddings(graph, groups),
    }
}

/// Flags scores exceeding `mean + k · std`; falls back to flagging the single
/// top score if the rule flags nothing (so the detector always reports at
/// least one group, matching Definition 1's non-empty output).
///
/// Non-finite scores are excluded from the mean/std estimate and are never
/// flagged; a degenerate distribution (`std == 0`, e.g. all scores equal)
/// skips straight to the top-score fallback instead of comparing against a
/// meaningless threshold.
fn adaptive_threshold(scores: &[f32], k: f32) -> Vec<bool> {
    if scores.is_empty() {
        return Vec::new();
    }
    let finite: Vec<f32> = scores.iter().copied().filter(|s| s.is_finite()).collect();
    if finite.is_empty() {
        return vec![false; scores.len()];
    }
    let mean = grgad_linalg::stats::mean(&finite);
    let std = grgad_linalg::stats::std_dev(&finite);
    let mut flags: Vec<bool> = if std > 0.0 {
        let tau = mean + k * std;
        scores.iter().map(|&s| s.is_finite() && s > tau).collect()
    } else {
        vec![false; scores.len()]
    };
    if !flags.iter().any(|&f| f) {
        if let Some(best) = scores
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_finite())
            .max_by(|a, b| a.1.total_cmp(b.1))
        {
            flags[best.0] = true;
        }
    }
    flags
}

/// The Table V "w/o TPGCL" group representation: the mean of the group's raw
/// node-attribute vectors. Group-parallel with per-group output slots, so
/// the batch is identical at any thread count.
fn mean_attribute_embeddings(graph: &Graph, groups: &[Group]) -> Matrix {
    let d = graph.feature_dim();
    let mut out = Matrix::zeros(groups.len(), d);
    if groups.is_empty() || d == 0 {
        return out;
    }
    grgad_parallel::par_chunks_mut(out.as_mut_slice(), d, |i, row| {
        let group = &groups[i];
        if group.is_empty() {
            return;
        }
        for &v in group.nodes() {
            for (j, &x) in graph.features().row(v).iter().enumerate() {
                row[j] += x;
            }
        }
        for x in row.iter_mut() {
            *x /= group.len() as f32;
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::TimingObserver;
    use grgad_datasets::example;

    fn quick_detector(seed: u64) -> TpGrGad {
        TpGrGad::new(TpGrGadConfig::fast().with_seed(seed))
    }

    #[test]
    fn pipeline_produces_consistent_output_shapes() {
        let dataset = example::generate(36, 5);
        let result = quick_detector(1).detect(&dataset.graph).unwrap();
        assert!(!result.anchor_nodes.is_empty());
        assert_eq!(result.node_errors.len(), dataset.graph.num_nodes());
        assert_eq!(result.candidate_groups.len(), result.scores.len());
        assert_eq!(
            result.candidate_groups.len(),
            result.predicted_anomalous.len()
        );
        assert_eq!(result.embeddings.rows(), result.candidate_groups.len());
        assert!(result.scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn anomalous_groups_are_sorted_by_score() {
        let dataset = example::generate(36, 6);
        let result = quick_detector(2).detect(&dataset.graph).unwrap();
        let reported = result.anomalous_groups();
        assert!(!reported.is_empty());
        for pair in reported.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    }

    #[test]
    fn evaluate_reports_paper_metrics() {
        let dataset = example::generate(36, 7);
        let (_, report) = quick_detector(3).evaluate(&dataset).unwrap();
        assert!(report.cr >= 0.0 && report.cr <= 1.0);
        assert!(report.f1 >= 0.0 && report.f1 <= 1.0);
        assert!(report.auc >= 0.0 && report.auc <= 1.0);
    }

    #[test]
    fn ablation_without_tpgcl_uses_attribute_means() {
        let dataset = example::generate(30, 8);
        let mut config = TpGrGadConfig::fast().with_seed(4);
        config.use_tpgcl = false;
        let trained = TpGrGad::new(config).fit(&dataset.graph).unwrap();
        assert!(trained.tpgcl().is_none());
        let result = trained.score(&dataset.graph).unwrap();
        assert_eq!(result.embeddings.cols(), dataset.graph.feature_dim());
    }

    #[test]
    fn pipeline_finds_planted_groups_better_than_chance() {
        // A larger background keeps the anomaly contamination realistic
        // (~13%), which the unsupervised outlier-scoring stage relies on.
        let dataset = example::generate(120, 11);
        let (_, report) = quick_detector(9).evaluate(&dataset).unwrap();
        // With clearly separated planted groups the detector should beat a
        // random scorer by a comfortable margin on at least one axis.
        assert!(
            report.cr > 0.3 || report.auc > 0.55,
            "pipeline failed to beat chance: {report:?}"
        );
    }

    #[test]
    fn score_groups_matches_full_scoring_run() {
        let dataset = example::generate(36, 10);
        let trained = quick_detector(5).fit(&dataset.graph).unwrap();
        let result = trained.score(&dataset.graph).unwrap();
        let direct = trained
            .score_groups(&dataset.graph, &result.candidate_groups)
            .unwrap();
        assert_eq!(result.scores, direct);
        assert_eq!(trained.apply_threshold(&direct), result.predicted_anomalous);
        assert!(trained
            .score_groups(&dataset.graph, &[])
            .unwrap()
            .is_empty());
    }

    #[test]
    fn fit_reports_training_epochs_and_score_reports_none() {
        let dataset = example::generate(36, 3);
        let detector = quick_detector(6);
        let mut fit_observer = TimingObserver::new();
        let trained = detector
            .fit_observed(&dataset.graph, &mut fit_observer)
            .unwrap();
        assert_eq!(fit_observer.stages.len(), 4);
        assert!(fit_observer.total_train_epochs() > 0);

        let mut score_observer = TimingObserver::new();
        let _ = trained
            .score_observed(&dataset.graph, &mut score_observer)
            .unwrap();
        assert_eq!(score_observer.stages.len(), 4);
        assert_eq!(score_observer.total_train_epochs(), 0);
        for report in &score_observer.stages {
            assert_eq!(report.phase, PipelinePhase::Score);
        }
    }

    #[test]
    fn scoring_mismatched_feature_dim_is_shape_mismatch() {
        let dataset = example::generate(30, 2);
        let trained = quick_detector(1).fit(&dataset.graph).unwrap();
        let other = Graph::new(4, Matrix::zeros(4, dataset.graph.feature_dim() + 1));
        let err = trained.score(&other).unwrap_err();
        assert!(matches!(err, GrgadError::ShapeMismatch { .. }), "{err:?}");
    }

    #[test]
    #[allow(deprecated)]
    fn score_cached_is_bit_identical_and_survives_invalidation() {
        let dataset = example::generate(40, 13);
        let trained = quick_detector(7).fit(&dataset.graph).unwrap();
        let full = trained.score(&dataset.graph).unwrap();

        let mut cache = GroupEmbeddingCache::new();
        let cold = trained.score_cached(&dataset.graph, &mut cache).unwrap();
        assert_eq!(cold.scores, full.scores);
        assert_eq!(cold.candidate_groups, full.candidate_groups);
        assert!(cache.misses() > 0 && cache.hits() == 0);
        assert_eq!(cache.len(), {
            let unique: std::collections::BTreeSet<_> = cold.candidate_groups.iter().collect();
            unique.len()
        });

        // Warm run on the unchanged graph: all hits, identical output.
        let warm = trained.score_cached(&dataset.graph, &mut cache).unwrap();
        assert_eq!(warm.scores, full.scores);
        assert!(cache.hits() > 0);

        // Invalidate a node: affected entries drop, output still identical.
        let victim = cold.candidate_groups[0].nodes()[0];
        let before = cache.len();
        cache.invalidate_nodes(&[victim]);
        assert!(cache.len() < before);
        let after = trained.score_cached(&dataset.graph, &mut cache).unwrap();
        assert_eq!(after.scores, full.scores);
    }

    /// Bitwise equality of every output a serving host relies on — stricter
    /// than `==` on scores alone because `-0.0 == 0.0`.
    fn assert_bit_identical(a: &TpGrGadResult, b: &TpGrGadResult, context: &str) {
        assert_eq!(a.anchor_nodes, b.anchor_nodes, "{context}: anchors");
        assert_eq!(
            a.node_errors
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>(),
            b.node_errors
                .iter()
                .map(|x| x.to_bits())
                .collect::<Vec<_>>(),
            "{context}: node errors"
        );
        assert_eq!(a.candidate_groups, b.candidate_groups, "{context}: groups");
        assert_eq!(
            a.scores.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            b.scores.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            "{context}: scores"
        );
        assert_eq!(
            a.predicted_anomalous, b.predicted_anomalous,
            "{context}: predictions"
        );
    }

    /// One low-churn round: flip one deterministic edge and rewrite one
    /// node's features, recording the dirt exactly like a serving host.
    fn apply_small_delta(graph: &mut Graph, state: &mut IncrementalState, round: usize) {
        let n = graph.num_nodes();
        let a = (round * 5 + 1) % n;
        let b = (round * 11 + 3) % n;
        if a != b {
            let flipped = if graph.has_edge(a, b) {
                graph.try_remove_edge(a, b).unwrap()
            } else {
                graph.try_add_edge(a, b).unwrap()
            };
            if flipped {
                state.mark_edge(a, b);
            }
        }
        let c = (round * 7 + 2) % n;
        let mut features = graph.features().row(c).to_vec();
        features[0] += 0.25;
        graph.try_set_node_features(c, &features).unwrap();
        state.mark_node(c);
    }

    #[test]
    fn score_incremental_matches_score_bitwise_across_rounds_and_fallback() {
        let dataset = example::generate(40, 13);
        let mut graph = dataset.graph.clone();
        let trained = quick_detector(7).fit(&graph).unwrap();
        let mut state = IncrementalState::new()
            .with_max_dirty_fraction(0.3)
            .unwrap();

        // Cold state: full recompute, bit-identical to `score`.
        let (cold, mode) = trained.score_incremental(&graph, &mut state).unwrap();
        assert_eq!(mode, ScoreMode::Full);
        assert_bit_identical(&cold, &trained.score(&graph).unwrap(), "cold");
        assert!(!state.is_cold());

        // Low-churn rounds stay incremental and exact.
        for round in 0..4 {
            apply_small_delta(&mut graph, &mut state, round);
            let (patched, mode) = trained.score_incremental(&graph, &mut state).unwrap();
            assert_eq!(mode, ScoreMode::Incremental, "round {round}");
            assert_bit_identical(
                &patched,
                &trained.score(&graph).unwrap(),
                &format!("round {round}"),
            );
        }
        let stats = state.stats();
        assert_eq!(stats.scores_incremental, 4);
        assert_eq!(stats.scores_full, 1);
        assert!(stats.groups_reused > 0, "draw cache never hit");
        assert!(stats.anchors_reused > 0, "no anchor overlap across rounds");
        assert!(stats.cache_hits > 0, "embedding cache never hit");
        // 1 full scan + 4 patched rounds must rescore far fewer than 5 full
        // scans — the whole point of the incremental path.
        assert!(
            stats.nodes_rescored < 5 * graph.num_nodes() as u64,
            "rescored {} of {} node-rounds",
            stats.nodes_rescored,
            5 * graph.num_nodes()
        );

        // A churn burst past max_dirty_fraction falls back to Full...
        for v in 0..(graph.num_nodes() * 2).div_ceil(5) {
            let mut features = graph.features().row(v).to_vec();
            features[0] -= 0.5;
            graph.try_set_node_features(v, &features).unwrap();
            state.mark_node(v);
        }
        let (burst, mode) = trained.score_incremental(&graph, &mut state).unwrap();
        assert_eq!(mode, ScoreMode::Full);
        assert_bit_identical(&burst, &trained.score(&graph).unwrap(), "burst");

        // ...and the refilled caches make the next round incremental again.
        apply_small_delta(&mut graph, &mut state, 9);
        let (resumed, mode) = trained.score_incremental(&graph, &mut state).unwrap();
        assert_eq!(mode, ScoreMode::Incremental);
        assert_bit_identical(&resumed, &trained.score(&graph).unwrap(), "resumed");
    }

    /// Satellite regression: a RemoveEdge→AddEdge of the *same* edge in one
    /// delta batch nets out to an unchanged graph, but the recorded dirt
    /// must still evict every cached group containing both endpoints — a
    /// host that "optimized away" the no-op pair would keep stale rows the
    /// moment the batch interleaves other mutations.
    #[test]
    fn remove_then_readd_same_edge_still_evicts_pairwise_groups() {
        let dataset = example::generate(40, 17);
        let mut graph = dataset.graph.clone();
        let trained = quick_detector(5).fit(&graph).unwrap();
        let mut state = IncrementalState::new();
        let (baseline, _) = trained.score_incremental(&graph, &mut state).unwrap();

        // Find an existing edge with both endpoints inside some candidate
        // group, so pairwise eviction has something to evict.
        let mut picked = None;
        'outer: for group in &baseline.candidate_groups {
            let nodes = group.nodes();
            for (i, &u) in nodes.iter().enumerate() {
                for &v in &nodes[i + 1..] {
                    if graph.has_edge(u, v) {
                        picked = Some((u, v));
                        break 'outer;
                    }
                }
            }
        }
        let (u, v) = picked.expect("no candidate group contains an edge");
        let evictable = baseline
            .candidate_groups
            .iter()
            .collect::<std::collections::BTreeSet<_>>()
            .iter()
            .filter(|g| g.contains(u) && g.contains(v))
            .count() as u64;
        assert!(evictable > 0);

        let misses_before = state.stats().cache_misses;
        assert!(graph.try_remove_edge(u, v).unwrap());
        state.mark_edge(u, v);
        assert!(graph.try_add_edge(u, v).unwrap());
        state.mark_edge(u, v);

        let (rescored, mode) = trained.score_incremental(&graph, &mut state).unwrap();
        assert_eq!(mode, ScoreMode::Incremental);
        assert_bit_identical(&rescored, &baseline, "net-unchanged batch");
        assert_eq!(
            state.stats().cache_misses - misses_before,
            evictable,
            "pairwise eviction must re-embed exactly the groups holding both endpoints"
        );
    }

    #[test]
    fn incremental_state_serde_round_trips_mid_stream() {
        let dataset = example::generate(36, 9);
        let mut graph = dataset.graph.clone();
        let trained = quick_detector(11).fit(&graph).unwrap();
        let mut state = IncrementalState::new();
        trained.score_incremental(&graph, &mut state).unwrap();
        // Leave dirt pending so the snapshot carries a non-trivial region.
        apply_small_delta(&mut graph, &mut state, 0);

        let json = state.to_json().unwrap();
        let mut restored = IncrementalState::from_json(&json).unwrap();
        assert_eq!(restored.stats(), state.stats());
        assert_eq!(restored.dirty(), state.dirty());

        // Original and restored states continue scoring identically.
        let (a, mode_a) = trained.score_incremental(&graph, &mut state).unwrap();
        let (b, mode_b) = trained.score_incremental(&graph, &mut restored).unwrap();
        assert_eq!(mode_a, mode_b);
        assert_bit_identical(&a, &b, "restored state");
        assert_eq!(state.stats(), restored.stats());

        // And the file form round-trips through `save`.
        let path =
            std::env::temp_dir().join(format!("grgad_state_roundtrip_{}.json", std::process::id()));
        state.save(&path).unwrap();
        let reloaded =
            IncrementalState::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(reloaded.stats(), state.stats());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fit_rejects_invalid_inputs_at_the_boundary() {
        let detector = quick_detector(1);
        let empty = Graph::with_no_features(0);
        assert!(matches!(
            detector.fit(&empty).unwrap_err(),
            GrgadError::EmptyGraph { .. }
        ));

        let mut nan_features = Matrix::zeros(6, 3);
        nan_features[(2, 1)] = f32::NAN;
        let nan_graph = Graph::new(6, nan_features);
        assert!(matches!(
            detector.fit(&nan_graph).unwrap_err(),
            GrgadError::NonFiniteInput { .. }
        ));

        let mut bad = TpGrGadConfig::fast();
        bad.anchor_fraction = -1.0;
        let dataset = example::generate(20, 1);
        assert!(matches!(
            TpGrGad::new(bad).fit(&dataset.graph).unwrap_err(),
            GrgadError::ConfigInvalid { .. }
        ));
    }

    #[test]
    fn score_groups_validates_membership_and_dedups() {
        let dataset = example::generate(30, 4);
        let trained = quick_detector(3).fit(&dataset.graph).unwrap();
        let n = dataset.graph.num_nodes();

        // Out-of-range member id.
        let bad = Group::new(vec![0, n + 5]);
        let err = trained.score_groups(&dataset.graph, &[bad]).unwrap_err();
        assert!(matches!(err, GrgadError::InvalidNodeId { .. }), "{err:?}");

        // Empty group.
        let err = trained
            .score_groups(&dataset.graph, &[Group::new(vec![])])
            .unwrap_err();
        assert!(matches!(err, GrgadError::EmptyGroup { .. }), "{err:?}");

        // Duplicate ids in a raw list are deduplicated by the canonical
        // Group constructor, so the score equals the deduped group's score
        // instead of silently double-counting the repeated member.
        let deduped = Group::try_new(vec![0, 1, 2], n).unwrap();
        let with_dups = Group::try_new(vec![0, 1, 1, 2, 2, 2], n).unwrap();
        assert_eq!(deduped, with_dups);
        let scores = trained
            .score_groups(&dataset.graph, &[deduped, with_dups])
            .unwrap();
        assert_eq!(scores[0], scores[1]);
    }

    /// Replaces one top-level field of a serialized model artifact.
    fn with_field(json: &str, key: &str, new_value: serde::Value) -> String {
        let value: serde::Value = serde_json::from_str(json).expect("parse model json");
        let serde::Value::Map(mut entries) = value else {
            panic!("model json must be an object");
        };
        for entry in &mut entries {
            if entry.0 == key {
                entry.1 = new_value;
                return serde_json::to_string(&serde::Value::Map(entries)).expect("render");
            }
        }
        panic!("field {key} not found");
    }

    /// Well-formed JSON with structurally wrong content must come back as
    /// a typed ModelIo error — never a panic inside `import_weights` or a
    /// silently accepted out-of-domain config (both previously crashed or
    /// slipped through the serving `load` path).
    #[test]
    fn corrupted_model_artifacts_are_typed_errors_not_panics() {
        let dataset = example::generate(30, 17);
        let trained = quick_detector(17).fit(&dataset.graph).unwrap();
        let json = trained.to_json().unwrap();

        // Empty weight snapshot (valid JSON, wrong matrix count).
        let empty_weights = with_field(&json, "mhgae_weights", serde::Value::Seq(Vec::new()));
        let err = TrainedTpGrGad::from_json(&empty_weights).unwrap_err();
        assert!(matches!(err, GrgadError::ModelIo { .. }), "{err:?}");
        assert!(err.to_string().contains("weight matrices"), "{err}");

        // Right count, wrong shape.
        let weights = trained.mhgae().export_weights();
        let mut wrong_shape: Vec<serde::Value> =
            weights.iter().map(serde::Serialize::to_value).collect();
        wrong_shape[0] = serde::Serialize::to_value(&Matrix::zeros(1, 1));
        let bad_shape = with_field(&json, "mhgae_weights", serde::Value::Seq(wrong_shape));
        let err = TrainedTpGrGad::from_json(&bad_shape).unwrap_err();
        assert!(err.to_string().contains("shape"), "{err}");

        // Out-of-domain config knob inside the artifact.
        let value: serde::Value = serde_json::from_str(&json).unwrap();
        let config_value = value.field("config").unwrap().clone();
        let serde::Value::Map(mut config_entries) = config_value else {
            panic!("config must be an object");
        };
        for entry in &mut config_entries {
            if entry.0 == "contamination" {
                entry.1 = serde::Value::Num(9.0);
            }
        }
        let bad_config = with_field(&json, "config", serde::Value::Map(config_entries));
        let err = TrainedTpGrGad::from_json(&bad_config).unwrap_err();
        assert!(matches!(err, GrgadError::ModelIo { .. }), "{err:?}");
        assert!(err.to_string().contains("contamination"), "{err}");
    }

    #[test]
    fn adaptive_threshold_flags_clear_outlier() {
        let scores = vec![0.1, 0.11, 0.09, 0.1, 5.0];
        let flags = adaptive_threshold(&scores, 1.0);
        assert_eq!(flags, vec![false, false, false, false, true]);
    }

    #[test]
    fn adaptive_threshold_degenerate_distribution_flags_one() {
        // All-equal scores: std == 0, no score exceeds mean — the fallback
        // must still report exactly one group.
        let flags = adaptive_threshold(&[2.5; 6], 1.0);
        assert_eq!(flags.iter().filter(|&&f| f).count(), 1);
        assert!(adaptive_threshold(&[], 1.0).is_empty());
    }

    #[test]
    fn adaptive_threshold_ignores_non_finite_scores() {
        // A NaN must neither poison the mean/std nor be flagged; the clear
        // finite outlier must still be found.
        let scores = vec![0.1, f32::NAN, 0.12, 0.11, 4.0, f32::INFINITY];
        let flags = adaptive_threshold(&scores, 1.0);
        assert!(!flags[1], "NaN must never be flagged");
        assert!(!flags[5], "inf must never be flagged");
        assert!(flags[4], "finite outlier must be flagged");

        // All-NaN scores: nothing to report.
        let none = adaptive_threshold(&[f32::NAN, f32::NAN], 1.0);
        assert_eq!(none, vec![false, false]);
    }
}
