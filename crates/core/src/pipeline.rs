//! The four-stage TP-GrGAD detection pipeline, split into a *trainer*
//! ([`TpGrGad`]) and a *trained-model artifact* ([`TrainedTpGrGad`]).
//!
//! [`TpGrGad::fit`] trains MH-GAE, TPGCL and the outlier detector once on a
//! graph and returns a [`TrainedTpGrGad`] that can score arbitrarily many
//! graphs/snapshots with **zero training epochs**, score pre-sampled
//! candidate groups directly, and persist itself as JSON. The legacy
//! [`TpGrGad::detect`] is a thin `fit(g).score(g)` wrapper and produces
//! bit-for-bit identical output.

use std::path::Path;

use grgad_datasets::GrGadDataset;
use grgad_gnn::{select_anchor_nodes, MhGae};
use grgad_graph::{Graph, Group};
use grgad_linalg::Matrix;
use grgad_metrics::{evaluate_detection, DetectionReport};
use grgad_outlier::{threshold_by_contamination, OutlierDetector};
use grgad_sampling::{sample_candidate_groups, SamplingStats};
use grgad_tpgcl::Tpgcl;

use crate::config::TpGrGadConfig;
use crate::stage::{observe_stage, NullObserver, PipelineObserver, PipelinePhase, PipelineStage};

/// Everything produced by one scoring run of the pipeline.
#[derive(Clone, Debug)]
pub struct TpGrGadResult {
    /// Anchor nodes selected by MH-GAE.
    pub anchor_nodes: Vec<usize>,
    /// Per-node reconstruction errors from MH-GAE.
    pub node_errors: Vec<f32>,
    /// Candidate groups produced by Alg. 1.
    pub candidate_groups: Vec<Group>,
    /// Sampling bookkeeping.
    pub sampling_stats: SamplingStats,
    /// Group embeddings fed to the outlier detector (`m × d`).
    pub embeddings: Matrix,
    /// Anomaly score per candidate group (higher = more anomalous).
    pub scores: Vec<f32>,
    /// Whether each candidate group is reported as anomalous.
    pub predicted_anomalous: Vec<bool>,
}

impl TpGrGadResult {
    /// The groups reported as anomalous, paired with their scores, sorted by
    /// descending score — the `{C, S}` output of Definition 1. Groups are
    /// borrowed from the result rather than cloned.
    pub fn anomalous_groups(&self) -> Vec<(&Group, f32)> {
        let mut out: Vec<(&Group, f32)> = self
            .candidate_groups
            .iter()
            .zip(&self.scores)
            .zip(&self.predicted_anomalous)
            .filter(|(_, &flag)| flag)
            .map(|((g, &s), _)| (g, s))
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        out
    }
}

/// The TP-GrGAD trainer: holds a configuration and fits trained-model
/// artifacts from graphs.
pub struct TpGrGad {
    config: TpGrGadConfig,
}

impl TpGrGad {
    /// Creates a detector with the given configuration.
    pub fn new(config: TpGrGadConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TpGrGadConfig {
        &self.config
    }

    /// Trains all learned stages on `graph` once and returns a reusable
    /// trained-model artifact. Equivalent to `fit_observed` with a no-op
    /// observer.
    pub fn fit(&self, graph: &Graph) -> TrainedTpGrGad {
        self.fit_observed(graph, &mut NullObserver)
    }

    /// [`TpGrGad::fit`] with a [`PipelineObserver`] receiving per-stage
    /// timing/workload reports.
    pub fn fit_observed(
        &self,
        graph: &Graph,
        observer: &mut dyn PipelineObserver,
    ) -> TrainedTpGrGad {
        let config = &self.config;
        // Forward the configured thread budget to the deterministic parallel
        // backend; scores are identical at any thread count.
        grgad_parallel::set_max_threads(config.num_threads);

        // Stage 1: anchor localization — train MH-GAE.
        let mhgae = observe_stage(
            observer,
            PipelineStage::AnchorLocalization,
            PipelinePhase::Fit,
            || {
                let mut mhgae = MhGae::new(
                    graph.feature_dim(),
                    config.reconstruction_target,
                    config.gae.clone(),
                );
                mhgae.fit(graph);
                let epochs = mhgae.gae().loss_history().len();
                (mhgae, graph.num_nodes(), epochs)
            },
        );
        let anchor_nodes = mhgae.anchor_nodes(config.anchor_fraction);

        // Stage 2: candidate-group sampling (Alg. 1) — the TPGCL training set.
        let candidate_groups = observe_stage(
            observer,
            PipelineStage::CandidateSampling,
            PipelinePhase::Fit,
            || {
                let (groups, _) = sample_candidate_groups(graph, &anchor_nodes, &config.sampling);
                let n = groups.len();
                (groups, n, 0)
            },
        );

        // Stage 3: train the TPGCL group encoder and embed the training
        // candidates (or take attribute means for the Table V ablation).
        let (tpgcl, embeddings) = observe_stage(
            observer,
            PipelineStage::GroupEmbedding,
            PipelinePhase::Fit,
            || {
                let tpgcl = if config.use_tpgcl {
                    let mut tpgcl = Tpgcl::new(graph.feature_dim(), config.tpgcl.clone());
                    if !candidate_groups.is_empty() {
                        tpgcl.fit(graph, &candidate_groups);
                    }
                    Some(tpgcl)
                } else {
                    None
                };
                let embeddings =
                    embed_groups(tpgcl.as_ref(), graph, &candidate_groups, config.use_tpgcl);
                let epochs = tpgcl.as_ref().map_or(0, |t| t.loss_history().len());
                ((tpgcl, embeddings), candidate_groups.len(), epochs)
            },
        );

        // Stage 4: fit the unsupervised outlier detector on the training
        // embeddings (an empty fit yields a detector that scores zeros).
        let detector = observe_stage(
            observer,
            PipelineStage::OutlierScoring,
            PipelinePhase::Fit,
            || {
                let mut detector = config.detector.build(config.seed);
                detector.fit(&embeddings);
                (detector, embeddings.rows(), 0)
            },
        );

        TrainedTpGrGad {
            config: config.clone(),
            mhgae,
            tpgcl,
            detector,
        }
    }

    /// Legacy one-shot API: trains on `graph` and scores the same graph.
    ///
    /// Exactly equivalent to `self.fit(graph).score(graph)` — callers that
    /// score more than one graph (or the same graph repeatedly) should hold
    /// on to the [`TrainedTpGrGad`] from [`TpGrGad::fit`] instead of paying
    /// for retraining on every call.
    pub fn detect(&self, graph: &Graph) -> TpGrGadResult {
        self.fit(graph).score(graph)
    }

    /// Runs the pipeline on a benchmark dataset and evaluates against its
    /// ground truth with the paper's metrics.
    pub fn evaluate(&self, dataset: &GrGadDataset) -> (TpGrGadResult, DetectionReport) {
        let result = self.detect(&dataset.graph);
        let report = evaluate_detection(
            &result.candidate_groups,
            &result.scores,
            &result.predicted_anomalous,
            &dataset.anomaly_groups,
            self.config.match_jaccard,
        );
        (result, report)
    }
}

/// A trained TP-GrGAD model: MH-GAE weights, the TPGCL group encoder and a
/// fitted outlier detector. Produced by [`TpGrGad::fit`]; scores any number
/// of graphs/snapshots without retraining and persists itself as JSON.
pub struct TrainedTpGrGad {
    config: TpGrGadConfig,
    mhgae: MhGae,
    tpgcl: Option<Tpgcl>,
    detector: Box<dyn OutlierDetector>,
}

impl TrainedTpGrGad {
    /// The configuration the model was trained with.
    pub fn config(&self) -> &TpGrGadConfig {
        &self.config
    }

    /// The trained anchor localizer.
    pub fn mhgae(&self) -> &MhGae {
        &self.mhgae
    }

    /// The trained TPGCL model (`None` for the Table V ablation).
    pub fn tpgcl(&self) -> Option<&Tpgcl> {
        self.tpgcl.as_ref()
    }

    /// Name of the fitted outlier detector.
    pub fn detector_name(&self) -> &'static str {
        self.detector.name()
    }

    /// Scores a graph with the trained model — zero training epochs.
    /// Equivalent to `score_observed` with a no-op observer.
    pub fn score(&self, graph: &Graph) -> TpGrGadResult {
        self.score_observed(graph, &mut NullObserver)
    }

    /// [`TrainedTpGrGad::score`] with a [`PipelineObserver`] receiving
    /// per-stage timing/workload reports (every report has
    /// `train_epochs == 0`).
    ///
    /// # Panics
    /// Panics if `graph`'s feature dimensionality differs from the graph the
    /// model was trained on.
    pub fn score_observed(
        &self,
        graph: &Graph,
        observer: &mut dyn PipelineObserver,
    ) -> TpGrGadResult {
        assert_eq!(
            graph.feature_dim(),
            self.mhgae.feature_dim(),
            "score: graph has {} features, model was trained on {}",
            graph.feature_dim(),
            self.mhgae.feature_dim()
        );
        let config = &self.config;
        grgad_parallel::set_max_threads(config.num_threads);

        // Stage 1: anchor localization — forward pass only.
        let (anchor_nodes, node_errors) = observe_stage(
            observer,
            PipelineStage::AnchorLocalization,
            PipelinePhase::Score,
            || {
                let node_errors = self.mhgae.infer_errors(graph).combined;
                let anchors = select_anchor_nodes(&node_errors, config.anchor_fraction);
                ((anchors, node_errors), graph.num_nodes(), 0)
            },
        );

        // Stage 2: candidate-group sampling (Alg. 1).
        let (candidate_groups, sampling_stats) = observe_stage(
            observer,
            PipelineStage::CandidateSampling,
            PipelinePhase::Score,
            || {
                let (groups, stats) =
                    sample_candidate_groups(graph, &anchor_nodes, &config.sampling);
                let n = groups.len();
                ((groups, stats), n, 0)
            },
        );

        if candidate_groups.is_empty() {
            return TpGrGadResult {
                anchor_nodes,
                node_errors,
                candidate_groups,
                sampling_stats,
                embeddings: Matrix::zeros(0, 0),
                scores: Vec::new(),
                predicted_anomalous: Vec::new(),
            };
        }

        // Stage 3: embed the candidate groups with the trained encoder.
        let embeddings = observe_stage(
            observer,
            PipelineStage::GroupEmbedding,
            PipelinePhase::Score,
            || {
                let z = embed_groups(
                    self.tpgcl.as_ref(),
                    graph,
                    &candidate_groups,
                    config.use_tpgcl,
                );
                (z, candidate_groups.len(), 0)
            },
        );

        // Stage 4: score with the fitted detector and threshold.
        let (scores, predicted_anomalous) = observe_stage(
            observer,
            PipelineStage::OutlierScoring,
            PipelinePhase::Score,
            || {
                let scores = self.detector.score(&embeddings);
                let flags = self.apply_threshold(&scores);
                let n = scores.len();
                ((scores, flags), n, 0)
            },
        );

        TpGrGadResult {
            anchor_nodes,
            node_errors,
            candidate_groups,
            sampling_stats,
            embeddings,
            scores,
            predicted_anomalous,
        }
    }

    /// Scores pre-sampled candidate groups directly, skipping anchor
    /// localization and sampling — the serving path for callers that manage
    /// their own candidates. Returns one anomaly score per group (higher =
    /// more anomalous); pair with [`TrainedTpGrGad::apply_threshold`] for
    /// binary predictions.
    ///
    /// With [`crate::DetectorKind::Ensemble`] the scores are rank-normalized
    /// *within the scored batch* (the SUOD combination rule), so they are
    /// comparable inside one call but not across calls — score related
    /// candidates together rather than one at a time.
    ///
    /// # Panics
    /// Panics if `graph`'s feature dimensionality differs from the graph the
    /// model was trained on.
    pub fn score_groups(&self, graph: &Graph, groups: &[Group]) -> Vec<f32> {
        assert_eq!(
            graph.feature_dim(),
            self.mhgae.feature_dim(),
            "score_groups: graph has {} features, model was trained on {}",
            graph.feature_dim(),
            self.mhgae.feature_dim()
        );
        if groups.is_empty() {
            return Vec::new();
        }
        grgad_parallel::set_max_threads(self.config.num_threads);
        let embeddings = embed_groups(self.tpgcl.as_ref(), graph, groups, self.config.use_tpgcl);
        self.detector.score(&embeddings)
    }

    /// Converts scores into binary predictions with the configured threshold
    /// (adaptive `mean + k·std`, or top-contamination fraction).
    pub fn apply_threshold(&self, scores: &[f32]) -> Vec<bool> {
        if self.config.adaptive_threshold {
            adaptive_threshold(scores, self.config.adaptive_k)
        } else {
            threshold_by_contamination(scores, self.config.contamination)
        }
    }

    /// Serializes the trained model (config + all weights + detector state)
    /// as a JSON string. [`TrainedTpGrGad::from_json`] restores a model that
    /// reproduces the original scores exactly.
    pub fn to_json(&self) -> Result<String, serde::Error> {
        serde_json::to_string_pretty(&self.to_value())
    }

    fn to_value(&self) -> serde::Value {
        use serde::Serialize;
        serde::Value::Map(vec![
            (
                "format".to_string(),
                serde::Value::Str(MODEL_FORMAT.to_string()),
            ),
            ("config".to_string(), self.config.to_value()),
            (
                "feature_dim".to_string(),
                self.mhgae.feature_dim().to_value(),
            ),
            (
                "mhgae_weights".to_string(),
                self.mhgae.export_weights().to_value(),
            ),
            (
                "tpgcl_weights".to_string(),
                self.tpgcl
                    .as_ref()
                    .map(|t| t.encoder().export_weights())
                    .to_value(),
            ),
            (
                "detector".to_string(),
                serde::Value::Map(vec![
                    (
                        "name".to_string(),
                        serde::Value::Str(self.detector.name().to_string()),
                    ),
                    ("state".to_string(), self.detector.save_state()),
                ]),
            ),
        ])
    }

    /// Restores a trained model from a [`TrainedTpGrGad::to_json`] string.
    pub fn from_json(json: &str) -> Result<Self, serde::Error> {
        use serde::Deserialize;
        let value: serde::Value = serde_json::from_str(json)?;
        let format = String::from_value(value.field("format")?)?;
        if format != MODEL_FORMAT {
            return Err(serde::Error::custom(format!(
                "unsupported model format `{format}` (expected `{MODEL_FORMAT}`)"
            )));
        }
        let config = TpGrGadConfig::from_value(value.field("config")?)?;
        let feature_dim = usize::from_value(value.field("feature_dim")?)?;

        let mhgae = MhGae::new(
            feature_dim,
            config.reconstruction_target,
            config.gae.clone(),
        );
        let mhgae_weights = Vec::<Matrix>::from_value(value.field("mhgae_weights")?)?;
        mhgae.import_weights(&mhgae_weights);

        let tpgcl = if config.use_tpgcl {
            let weights = Vec::<Matrix>::from_value(value.field("tpgcl_weights")?)?;
            let tpgcl = Tpgcl::new(feature_dim, config.tpgcl.clone());
            tpgcl.encoder().import_weights(&weights);
            Some(tpgcl)
        } else {
            None
        };

        let detector_value = value.field("detector")?;
        let name = String::from_value(detector_value.field("name")?)?;
        let mut detector = config.detector.build(config.seed);
        if name != detector.name() {
            return Err(serde::Error::custom(format!(
                "detector state `{name}` does not match configured `{}`",
                detector.name()
            )));
        }
        detector.load_state(detector_value.field("state")?)?;

        Ok(Self {
            config,
            mhgae,
            tpgcl,
            detector,
        })
    }

    /// Writes the model as JSON to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let json = self
            .to_json()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        std::fs::write(path, json)
    }

    /// Reads a model saved by [`TrainedTpGrGad::save`].
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        Self::from_json(&json).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

/// Identifier stored in saved models; bump on breaking layout changes.
const MODEL_FORMAT: &str = "tp-grgad-model/v1";

/// Embeds groups with the trained TPGCL encoder, or with the Table V
/// "w/o TPGCL" attribute-mean ablation.
fn embed_groups(tpgcl: Option<&Tpgcl>, graph: &Graph, groups: &[Group], use_tpgcl: bool) -> Matrix {
    if groups.is_empty() {
        return Matrix::zeros(0, 0);
    }
    match (use_tpgcl, tpgcl) {
        (true, Some(model)) => model.embed_groups(graph, groups),
        (true, None) => unreachable!("use_tpgcl set but no TPGCL model present"),
        (false, _) => mean_attribute_embeddings(graph, groups),
    }
}

/// Flags scores exceeding `mean + k · std`; falls back to flagging the single
/// top score if the rule flags nothing (so the detector always reports at
/// least one group, matching Definition 1's non-empty output).
///
/// Non-finite scores are excluded from the mean/std estimate and are never
/// flagged; a degenerate distribution (`std == 0`, e.g. all scores equal)
/// skips straight to the top-score fallback instead of comparing against a
/// meaningless threshold.
fn adaptive_threshold(scores: &[f32], k: f32) -> Vec<bool> {
    if scores.is_empty() {
        return Vec::new();
    }
    let finite: Vec<f32> = scores.iter().copied().filter(|s| s.is_finite()).collect();
    if finite.is_empty() {
        return vec![false; scores.len()];
    }
    let mean = grgad_linalg::stats::mean(&finite);
    let std = grgad_linalg::stats::std_dev(&finite);
    let mut flags: Vec<bool> = if std > 0.0 {
        let tau = mean + k * std;
        scores.iter().map(|&s| s.is_finite() && s > tau).collect()
    } else {
        vec![false; scores.len()]
    };
    if !flags.iter().any(|&f| f) {
        if let Some(best) = scores
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_finite())
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        {
            flags[best.0] = true;
        }
    }
    flags
}

/// The Table V "w/o TPGCL" group representation: the mean of the group's raw
/// node-attribute vectors. Group-parallel with per-group output slots, so
/// the batch is identical at any thread count.
fn mean_attribute_embeddings(graph: &Graph, groups: &[Group]) -> Matrix {
    let d = graph.feature_dim();
    let mut out = Matrix::zeros(groups.len(), d);
    if groups.is_empty() || d == 0 {
        return out;
    }
    grgad_parallel::par_chunks_mut(out.as_mut_slice(), d, |i, row| {
        let group = &groups[i];
        if group.is_empty() {
            return;
        }
        for &v in group.nodes() {
            for (j, &x) in graph.features().row(v).iter().enumerate() {
                row[j] += x;
            }
        }
        for x in row.iter_mut() {
            *x /= group.len() as f32;
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::TimingObserver;
    use grgad_datasets::example;

    fn quick_detector(seed: u64) -> TpGrGad {
        TpGrGad::new(TpGrGadConfig::fast().with_seed(seed))
    }

    #[test]
    fn pipeline_produces_consistent_output_shapes() {
        let dataset = example::generate(36, 5);
        let result = quick_detector(1).detect(&dataset.graph);
        assert!(!result.anchor_nodes.is_empty());
        assert_eq!(result.node_errors.len(), dataset.graph.num_nodes());
        assert_eq!(result.candidate_groups.len(), result.scores.len());
        assert_eq!(
            result.candidate_groups.len(),
            result.predicted_anomalous.len()
        );
        assert_eq!(result.embeddings.rows(), result.candidate_groups.len());
        assert!(result.scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn anomalous_groups_are_sorted_by_score() {
        let dataset = example::generate(36, 6);
        let result = quick_detector(2).detect(&dataset.graph);
        let reported = result.anomalous_groups();
        assert!(!reported.is_empty());
        for pair in reported.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    }

    #[test]
    fn evaluate_reports_paper_metrics() {
        let dataset = example::generate(36, 7);
        let (_, report) = quick_detector(3).evaluate(&dataset);
        assert!(report.cr >= 0.0 && report.cr <= 1.0);
        assert!(report.f1 >= 0.0 && report.f1 <= 1.0);
        assert!(report.auc >= 0.0 && report.auc <= 1.0);
    }

    #[test]
    fn ablation_without_tpgcl_uses_attribute_means() {
        let dataset = example::generate(30, 8);
        let mut config = TpGrGadConfig::fast().with_seed(4);
        config.use_tpgcl = false;
        let trained = TpGrGad::new(config).fit(&dataset.graph);
        assert!(trained.tpgcl().is_none());
        let result = trained.score(&dataset.graph);
        assert_eq!(result.embeddings.cols(), dataset.graph.feature_dim());
    }

    #[test]
    fn pipeline_finds_planted_groups_better_than_chance() {
        // A larger background keeps the anomaly contamination realistic
        // (~13%), which the unsupervised outlier-scoring stage relies on.
        let dataset = example::generate(120, 11);
        let (_, report) = quick_detector(9).evaluate(&dataset);
        // With clearly separated planted groups the detector should beat a
        // random scorer by a comfortable margin on at least one axis.
        assert!(
            report.cr > 0.3 || report.auc > 0.55,
            "pipeline failed to beat chance: {report:?}"
        );
    }

    #[test]
    fn score_groups_matches_full_scoring_run() {
        let dataset = example::generate(36, 10);
        let trained = quick_detector(5).fit(&dataset.graph);
        let result = trained.score(&dataset.graph);
        let direct = trained.score_groups(&dataset.graph, &result.candidate_groups);
        assert_eq!(result.scores, direct);
        assert_eq!(trained.apply_threshold(&direct), result.predicted_anomalous);
        assert!(trained.score_groups(&dataset.graph, &[]).is_empty());
    }

    #[test]
    fn fit_reports_training_epochs_and_score_reports_none() {
        let dataset = example::generate(36, 3);
        let detector = quick_detector(6);
        let mut fit_observer = TimingObserver::new();
        let trained = detector.fit_observed(&dataset.graph, &mut fit_observer);
        assert_eq!(fit_observer.stages.len(), 4);
        assert!(fit_observer.total_train_epochs() > 0);

        let mut score_observer = TimingObserver::new();
        let _ = trained.score_observed(&dataset.graph, &mut score_observer);
        assert_eq!(score_observer.stages.len(), 4);
        assert_eq!(score_observer.total_train_epochs(), 0);
        for report in &score_observer.stages {
            assert_eq!(report.phase, PipelinePhase::Score);
        }
    }

    #[test]
    #[should_panic(expected = "features")]
    fn scoring_mismatched_feature_dim_panics() {
        let dataset = example::generate(30, 2);
        let trained = quick_detector(1).fit(&dataset.graph);
        let other = Graph::new(4, Matrix::zeros(4, dataset.graph.feature_dim() + 1));
        let _ = trained.score(&other);
    }

    #[test]
    fn adaptive_threshold_flags_clear_outlier() {
        let scores = vec![0.1, 0.11, 0.09, 0.1, 5.0];
        let flags = adaptive_threshold(&scores, 1.0);
        assert_eq!(flags, vec![false, false, false, false, true]);
    }

    #[test]
    fn adaptive_threshold_degenerate_distribution_flags_one() {
        // All-equal scores: std == 0, no score exceeds mean — the fallback
        // must still report exactly one group.
        let flags = adaptive_threshold(&[2.5; 6], 1.0);
        assert_eq!(flags.iter().filter(|&&f| f).count(), 1);
        assert!(adaptive_threshold(&[], 1.0).is_empty());
    }

    #[test]
    fn adaptive_threshold_ignores_non_finite_scores() {
        // A NaN must neither poison the mean/std nor be flagged; the clear
        // finite outlier must still be found.
        let scores = vec![0.1, f32::NAN, 0.12, 0.11, 4.0, f32::INFINITY];
        let flags = adaptive_threshold(&scores, 1.0);
        assert!(!flags[1], "NaN must never be flagged");
        assert!(!flags[5], "inf must never be flagged");
        assert!(flags[4], "finite outlier must be flagged");

        // All-NaN scores: nothing to report.
        let none = adaptive_threshold(&[f32::NAN, f32::NAN], 1.0);
        assert_eq!(none, vec![false, false]);
    }
}
