//! The workspace error type, re-exported at its canonical public path.
//!
//! [`GrgadError`] is defined in the dependency-free `grgad-error` crate so
//! the lower layers (`grgad-linalg`, `grgad-graph`, `grgad-datasets`) can
//! return it too without a dependency cycle; `grgad_core::error::GrgadError`
//! is the path downstream code should name. See the error-taxonomy section
//! of DESIGN.md for which variant each boundary produces.

pub use grgad_error::GrgadError;
