//! First-class cross-round state for incremental scoring:
//! [`IncrementalState`] and the [`ScoreMode`] every incremental score
//! reports.
//!
//! `TrainedTpGrGad::score_incremental` re-scores an evolving graph by
//! patching three levels of cached state instead of recomputing the
//! pipeline (DESIGN.md §9):
//!
//! 1. **node errors / anchors** — an [`ErrorCache`] of per-layer GCN
//!    activations and raw error vectors, patched on the receptive-field
//!    hop ball of the dirty region;
//! 2. **candidate draws** — a [`DrawCache`] memoizing the path/tree/cycle
//!    searches of Alg. 1, pruned by hop distance from topology dirt;
//! 3. **group embeddings** — the [`GroupEmbeddingCache`], invalidated
//!    per-member for node dirt and pairwise for edge dirt.
//!
//! The contract at every level is the same: **bit-for-bit identity** with a
//! from-scratch `score` on the current graph. The state also carries the
//! [`DirtyRegion`] deltas accumulate into, the previous round's anchors
//! (for reuse accounting), and lifetime counters surfaced by
//! [`IncrementalState::stats`].

use std::collections::BTreeSet;
use std::path::Path;

use grgad_error::GrgadError;
use grgad_gnn::ErrorCache;
use grgad_graph::DirtyRegion;
use grgad_sampling::DrawCache;
use serde::{Deserialize, Serialize};

use crate::pipeline::GroupEmbeddingCache;

/// How a score request was served.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScoreMode {
    /// Cached state was patched: only dirty-region work was recomputed.
    Incremental,
    /// Everything was recomputed (first score, an invalidated state, or a
    /// dirty fraction above [`IncrementalState::max_dirty_fraction`]). The
    /// full run still refills every cache, so the next round can patch.
    Full,
}

impl ScoreMode {
    /// Wire name (`incremental` | `full`).
    pub fn name(&self) -> &'static str {
        match self {
            ScoreMode::Incremental => "incremental",
            ScoreMode::Full => "full",
        }
    }
}

/// Lifetime counters and cache gauges of an [`IncrementalState`] — the
/// `stats` payload serving hosts expose. Deterministic functions of the
/// request history (no wall-clock), so scripted sessions golden-diff
/// cleanly.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IncrementalStats {
    /// Scores served by patching cached state.
    pub scores_incremental: u64,
    /// Scores served by full recomputation.
    pub scores_full: u64,
    /// Nodes whose reconstruction errors were actually recomputed, summed
    /// over all scores (a full score counts every node).
    pub nodes_rescored: u64,
    /// Anchor slots that re-selected a previous-round anchor, summed over
    /// all scores after the first.
    pub anchors_reused: u64,
    /// Candidate-group draws answered by running a graph search
    /// (draw-cache misses).
    pub groups_resampled: u64,
    /// Candidate-group draws answered from the draw cache.
    pub groups_reused: u64,
    /// Group-embedding cache hits.
    pub cache_hits: u64,
    /// Group-embedding cache misses.
    pub cache_misses: u64,
    /// Nodes covered by the error cache (0 when cold).
    pub cached_nodes: usize,
    /// Memoized candidate draws currently held.
    pub cached_draws: usize,
    /// Group embeddings currently held.
    pub cached_embeddings: usize,
}

/// Persistent cross-round scoring state: all three cache levels, the dirty
/// region deltas accumulate into, and reuse counters. Create one per
/// evolving graph, feed every mutation to [`IncrementalState::mark_node`] /
/// [`IncrementalState::mark_edge`], and pass it to
/// `TrainedTpGrGad::score_incremental` on every score.
#[derive(Debug)]
pub struct IncrementalState {
    pub(crate) errors: Option<ErrorCache>,
    pub(crate) draws: DrawCache,
    pub(crate) embeddings: GroupEmbeddingCache,
    pub(crate) dirty: DirtyRegion,
    pub(crate) last_anchors: Vec<usize>,
    pub(crate) max_dirty_fraction: f32,
    pub(crate) scores_incremental: u64,
    pub(crate) scores_full: u64,
    pub(crate) nodes_rescored: u64,
    pub(crate) anchors_reused: u64,
}

impl Default for IncrementalState {
    fn default() -> Self {
        Self::new()
    }
}

impl IncrementalState {
    /// Fresh (cold) state with the default dirty-fraction fallback of 0.25.
    pub fn new() -> Self {
        Self {
            errors: None,
            draws: DrawCache::new(),
            embeddings: GroupEmbeddingCache::new(),
            dirty: DirtyRegion::new(),
            last_anchors: Vec::new(),
            max_dirty_fraction: 0.25,
            scores_incremental: 0,
            scores_full: 0,
            nodes_rescored: 0,
            anchors_reused: 0,
        }
    }

    /// Sets the dirty-node fraction (touched / total nodes) above which a
    /// score skips patching entirely and recomputes from scratch.
    ///
    /// # Errors
    /// [`GrgadError::ConfigInvalid`] outside `[0, 1]` or non-finite.
    pub fn with_max_dirty_fraction(mut self, fraction: f32) -> Result<Self, GrgadError> {
        if !fraction.is_finite() || !(0.0..=1.0).contains(&fraction) {
            return Err(GrgadError::config("max_dirty_fraction must be in [0, 1]"));
        }
        self.max_dirty_fraction = fraction;
        Ok(self)
    }

    /// The configured dirty-fraction fallback threshold.
    pub fn max_dirty_fraction(&self) -> f32 {
        self.max_dirty_fraction
    }

    /// Records a node whose own state changed (features set, node
    /// appended).
    pub fn mark_node(&mut self, node: usize) {
        self.dirty.mark_node(node);
    }

    /// Records a changed (added or removed) edge.
    pub fn mark_edge(&mut self, u: usize, v: usize) {
        self.dirty.mark_edge(u, v);
    }

    /// The mutations recorded since the last successful score.
    pub fn dirty(&self) -> &DirtyRegion {
        &self.dirty
    }

    /// True until the first successful score populates the caches.
    pub fn is_cold(&self) -> bool {
        self.errors.is_none()
    }

    /// Drops every cached level (errors, draws, embeddings). The next score
    /// recomputes from scratch — and refills the caches. Recorded dirt and
    /// lifetime counters are kept.
    pub fn invalidate(&mut self) {
        self.errors = None;
        self.draws.clear();
        self.embeddings.clear();
        self.last_anchors.clear();
    }

    /// Current counters and cache gauges.
    pub fn stats(&self) -> IncrementalStats {
        let (draw_hits, draw_misses) = self.draws.counters();
        IncrementalStats {
            scores_incremental: self.scores_incremental,
            scores_full: self.scores_full,
            nodes_rescored: self.nodes_rescored,
            anchors_reused: self.anchors_reused,
            groups_resampled: draw_misses,
            groups_reused: draw_hits,
            cache_hits: self.embeddings.hits(),
            cache_misses: self.embeddings.misses(),
            cached_nodes: self.errors.as_ref().map_or(0, ErrorCache::nodes),
            cached_draws: self.draws.len(),
            cached_embeddings: self.embeddings.len(),
        }
    }

    /// Serializes the full state (all three cache levels, recorded dirt,
    /// counters) as JSON. [`IncrementalState::from_json`] restores a state
    /// that continues scoring bit-identically.
    ///
    /// # Errors
    /// [`GrgadError::ModelIo`] when the state cannot be rendered.
    pub fn to_json(&self) -> Result<String, GrgadError> {
        serde_json::to_string(&self.to_value())
            .map_err(|e| GrgadError::model_io(STATE_IN_MEMORY, e))
    }

    fn to_value(&self) -> serde::Value {
        let dirty_nodes: Vec<usize> = self.dirty.nodes().iter().copied().collect();
        let dirty_edges: Vec<(usize, usize)> = self.dirty.edges().iter().copied().collect();
        serde::Value::Map(vec![
            (
                "format".to_string(),
                serde::Value::Str(STATE_FORMAT.to_string()),
            ),
            ("errors".to_string(), self.errors.to_value()),
            ("draws".to_string(), self.draws.to_value()),
            ("embeddings".to_string(), self.embeddings.snapshot_value()),
            ("dirty_nodes".to_string(), dirty_nodes.to_value()),
            ("dirty_edges".to_string(), dirty_edges.to_value()),
            ("last_anchors".to_string(), self.last_anchors.to_value()),
            (
                "max_dirty_fraction".to_string(),
                self.max_dirty_fraction.to_value(),
            ),
            (
                "scores_incremental".to_string(),
                self.scores_incremental.to_value(),
            ),
            ("scores_full".to_string(), self.scores_full.to_value()),
            ("nodes_rescored".to_string(), self.nodes_rescored.to_value()),
            ("anchors_reused".to_string(), self.anchors_reused.to_value()),
        ])
    }

    /// Restores a state saved by [`IncrementalState::to_json`] /
    /// [`IncrementalState::save`].
    ///
    /// # Errors
    /// [`GrgadError::ModelIo`] for malformed or wrong-format JSON.
    pub fn from_json(json: &str) -> Result<Self, GrgadError> {
        Self::from_value_tree(json).map_err(|e| GrgadError::model_io(STATE_IN_MEMORY, e))
    }

    fn from_value_tree(json: &str) -> Result<Self, serde::Error> {
        let value: serde::Value = serde_json::from_str(json)?;
        let format = String::from_value(value.field("format")?)?;
        if format != STATE_FORMAT {
            return Err(serde::Error::custom(format!(
                "unsupported state format `{format}` (expected `{STATE_FORMAT}`)"
            )));
        }
        let mut dirty = DirtyRegion::new();
        for node in Vec::<usize>::from_value(value.field("dirty_nodes")?)? {
            dirty.mark_node(node);
        }
        for (u, v) in Vec::<(usize, usize)>::from_value(value.field("dirty_edges")?)? {
            dirty.mark_edge(u, v);
        }
        Ok(Self {
            errors: Option::<ErrorCache>::from_value(value.field("errors")?)?,
            draws: DrawCache::from_value(value.field("draws")?)?,
            embeddings: GroupEmbeddingCache::from_snapshot_value(value.field("embeddings")?)?,
            dirty,
            last_anchors: Vec::<usize>::from_value(value.field("last_anchors")?)?,
            max_dirty_fraction: f32::from_value(value.field("max_dirty_fraction")?)?,
            scores_incremental: u64::from_value(value.field("scores_incremental")?)?,
            scores_full: u64::from_value(value.field("scores_full")?)?,
            nodes_rescored: u64::from_value(value.field("nodes_rescored")?)?,
            anchors_reused: u64::from_value(value.field("anchors_reused")?)?,
        })
    }

    /// Writes the state as JSON to `path` — the `state_save` protocol op.
    ///
    /// # Errors
    /// [`GrgadError::ModelIo`] carrying the path and the underlying cause.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), GrgadError> {
        let path = path.as_ref();
        let json = self.to_json()?;
        std::fs::write(path, json).map_err(|e| GrgadError::model_io(path.display().to_string(), e))
    }

    /// Anchor overlap with the previous round, recorded by the scoring
    /// path.
    pub(crate) fn record_anchor_reuse(&mut self, anchors: &[usize]) {
        let prev: BTreeSet<usize> = self.last_anchors.iter().copied().collect();
        self.anchors_reused += anchors.iter().filter(|a| prev.contains(a)).count() as u64;
        self.last_anchors = anchors.to_vec();
    }
}

/// Identifier stored in saved states; bump on breaking layout changes.
const STATE_FORMAT: &str = "grgad-incremental-state/v1";

/// Path label for in-memory (de)serialization failures.
const STATE_IN_MEMORY: &str = "<memory>";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fraction_bounds_are_validated() {
        assert!(IncrementalState::new().with_max_dirty_fraction(0.0).is_ok());
        assert!(IncrementalState::new().with_max_dirty_fraction(1.0).is_ok());
        for bad in [-0.1, 1.5, f32::NAN, f32::INFINITY] {
            let err = IncrementalState::new()
                .with_max_dirty_fraction(bad)
                .unwrap_err();
            assert!(
                matches!(err, GrgadError::ConfigInvalid { .. }),
                "{bad}: {err:?}"
            );
        }
    }

    #[test]
    fn cold_state_reports_empty_stats_and_invalidate_keeps_counters() {
        let mut state = IncrementalState::new();
        assert!(state.is_cold());
        let stats = state.stats();
        assert_eq!(stats.scores_incremental + stats.scores_full, 0);
        assert_eq!(stats.cached_nodes, 0);
        state.mark_node(3);
        state.mark_edge(5, 1);
        assert!(!state.dirty().is_empty());
        state.scores_full = 2;
        state.invalidate();
        assert!(state.is_cold());
        assert_eq!(state.stats().scores_full, 2, "counters survive invalidate");
        assert!(!state.dirty().is_empty(), "dirt survives invalidate");
    }

    #[test]
    fn empty_state_serde_round_trips() {
        let mut state = IncrementalState::new()
            .with_max_dirty_fraction(0.4)
            .unwrap();
        state.mark_edge(9, 2);
        state.scores_incremental = 7;
        let json = state.to_json().unwrap();
        let back = IncrementalState::from_json(&json).unwrap();
        assert_eq!(back.max_dirty_fraction(), 0.4);
        assert_eq!(back.stats(), state.stats());
        assert!(back.dirty().edges().contains(&(2, 9)));

        let err = IncrementalState::from_json("{\"format\":\"nope\"}").unwrap_err();
        assert!(matches!(err, GrgadError::ModelIo { .. }), "{err:?}");
    }
}
