//! The lexer-level source scanner: splits Rust source into per-line *code*
//! and *comment* channels so rule patterns never match inside string
//! literals or comments, and suppression directives are read from comments
//! only.
//!
//! This is deliberately not a full Rust lexer — it recognizes exactly the
//! constructs that would cause false positives for a substring-based rule
//! engine: line comments, (nested) block comments, string literals, raw
//! string literals (`r"…"`, `r#"…"#`, any hash depth, plus `b`/`br`
//! prefixes), char literals and lifetimes. Everything else passes through
//! verbatim.
//!
//! Column fidelity: the `code` channel of every line has exactly the same
//! character count as the source line, with masked regions replaced by
//! spaces, so byte offsets found by the rule engine are real column
//! numbers.

/// One source line, split into its code and comment channels.
#[derive(Debug, Clone, Default)]
pub struct ScannedLine {
    /// The line with comments and literal *contents* blanked to spaces.
    /// Quote characters are kept so the engine can see literal boundaries.
    pub code: String,
    /// The concatenated comment text of the line (without `//` / `/*`).
    pub comment: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    /// Nesting depth of `/* … */`.
    BlockComment(u32),
    /// Inside `"…"`; tracks a pending backslash escape.
    Str {
        escaped: bool,
    },
    /// Inside `r##"…"##` with the given hash count.
    RawStr {
        hashes: u32,
    },
    /// Inside `'…'`; tracks a pending backslash escape.
    CharLit {
        escaped: bool,
    },
}

/// Scans `src` into per-line code/comment channels.
pub fn scan(src: &str) -> Vec<ScannedLine> {
    let chars: Vec<char> = src.chars().collect();
    let mut lines = Vec::new();
    let mut cur = ScannedLine::default();
    let mut state = State::Code;
    let mut i = 0;

    // Returns the number of `#` characters following a raw-string prefix at
    // `at`, or `None` if this is not a raw string start.
    let raw_str_hashes = |chars: &[char], at: usize| -> Option<u32> {
        let mut j = at;
        let mut hashes = 0u32;
        while j < chars.len() && chars[j] == '#' {
            hashes += 1;
            j += 1;
        }
        (j < chars.len() && chars[j] == '"').then_some(hashes)
    };

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                state = State::Code;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    cur.code.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    cur.code.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    state = State::Str { escaped: false };
                    cur.code.push('"');
                    i += 1;
                } else if (c == 'r' || c == 'b') && !prev_is_ident(&cur.code) {
                    // r"…", r#"…"#, b"…", br"…", br#"…"# — find the quote.
                    let mut j = i + 1;
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    if c == 'b' && chars.get(j) == Some(&'"') {
                        // plain byte string b"…"
                        for _ in i..=j {
                            cur.code.push(' ');
                        }
                        cur.code.pop();
                        cur.code.push('"');
                        state = State::Str { escaped: false };
                        i = j + 1;
                    } else if let Some(h) = raw_str_hashes(&chars, j) {
                        // consume prefix + hashes + opening quote
                        let end = j + h as usize; // index of the quote
                        for _ in i..=end {
                            cur.code.push(' ');
                        }
                        cur.code.pop();
                        cur.code.push('"');
                        state = State::RawStr { hashes: h };
                        i = end + 1;
                    } else {
                        cur.code.push(c);
                        i += 1;
                    }
                } else if c == '\'' {
                    // Char literal or lifetime. `'x'` / `'\n'` are literals;
                    // `'a` followed by anything but a closing quote is a
                    // lifetime (kept as code).
                    let is_char_lit = matches!(
                        (chars.get(i + 1), chars.get(i + 2)),
                        (Some('\\'), _) | (Some(_), Some('\''))
                    );
                    if is_char_lit {
                        state = State::CharLit { escaped: false };
                        cur.code.push('\'');
                    } else {
                        cur.code.push('\'');
                    }
                    i += 1;
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                cur.code.push(' ');
                cur.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    cur.code.push_str("  ");
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    cur.code.push_str("  ");
                    i += 2;
                } else {
                    cur.code.push(' ');
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str { escaped } => {
                if escaped {
                    state = State::Str { escaped: false };
                    cur.code.push(' ');
                } else if c == '\\' {
                    state = State::Str { escaped: true };
                    cur.code.push(' ');
                } else if c == '"' {
                    state = State::Code;
                    cur.code.push('"');
                } else {
                    cur.code.push(' ');
                }
                i += 1;
            }
            State::RawStr { hashes } => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && chars.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        for _ in i..j {
                            cur.code.push(' ');
                        }
                        cur.code.pop();
                        cur.code.push('"');
                        state = State::Code;
                        i = j;
                        continue;
                    }
                }
                cur.code.push(' ');
                i += 1;
            }
            State::CharLit { escaped } => {
                if escaped {
                    state = State::CharLit { escaped: false };
                    cur.code.push(' ');
                } else if c == '\\' {
                    state = State::CharLit { escaped: true };
                    cur.code.push(' ');
                } else if c == '\'' {
                    state = State::Code;
                    cur.code.push('\'');
                } else {
                    cur.code.push(' ');
                }
                i += 1;
            }
        }
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        lines.push(cur);
    }
    lines
}

/// True when the last character of `code_so_far` is part of an identifier —
/// used to tell `r"…"` (raw string) apart from e.g. `var"` or `attr` in
/// identifiers ending with `r`/`b`.
fn prev_is_ident(code_so_far: &str) -> bool {
    code_so_far
        .chars()
        .last()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Finds the byte offset of `word` in `code` as a whole identifier (both
/// neighbors are non-identifier characters), starting at `from`.
pub fn find_word_from(code: &str, word: &str, from: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut start = from;
    while let Some(pos) = code[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + word.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return Some(at);
        }
        start = at + word.len().max(1);
    }
    None
}

/// [`find_word_from`] from the start of the line.
pub fn find_word(code: &str, word: &str) -> Option<usize> {
    find_word_from(code, word, 0)
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_masked() {
        let lines = scan("let x = 1; // HashMap here\n/* HashSet */ let y = 2;\n");
        assert!(!lines[0].code.contains("HashMap"));
        assert!(lines[0].comment.contains("HashMap"));
        assert!(!lines[1].code.contains("HashSet"));
        assert!(lines[1].code.contains("let y"));
    }

    #[test]
    fn nested_block_comments() {
        let lines = scan("a /* outer /* inner */ still */ b\n");
        assert!(lines[0].code.contains('a'));
        assert!(lines[0].code.contains('b'));
        assert!(!lines[0].code.contains("inner"));
        assert!(!lines[0].code.contains("still"));
    }

    #[test]
    fn string_contents_are_masked() {
        let lines = scan("let s = \"partial_cmp\"; let t = s;\n");
        assert!(!lines[0].code.contains("partial_cmp"));
        assert!(lines[0].code.contains("let t"));
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        let lines = scan("let s = r#\"thread_rng \"quoted\" inside\"#; done();\n");
        assert!(!lines[0].code.contains("thread_rng"));
        assert!(lines[0].code.contains("done()"));
        let lines = scan("let s = r\"SystemTime\"; ok();\n");
        assert!(!lines[0].code.contains("SystemTime"));
        assert!(lines[0].code.contains("ok()"));
    }

    #[test]
    fn multiline_strings_stay_masked() {
        let lines = scan("let s = \"line one\nHashMap on line two\";\nafter();\n");
        assert!(!lines[1].code.contains("HashMap"));
        assert!(lines[2].code.contains("after()"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let lines = scan("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; }\n");
        assert!(lines[0].code.contains("'a str"));
        assert!(!lines[0].code.contains('x') || lines[0].code.contains("x: &"));
        let lines = scan("let c = '\"'; let s = partial_cmp;\n");
        assert!(lines[0].code.contains("partial_cmp"), "{:?}", lines[0].code);
    }

    #[test]
    fn columns_are_preserved() {
        let src = "let m = \"xx\"; HashMap::new();\n";
        let lines = scan(src);
        let col = find_word(&lines[0].code, "HashMap").expect("found");
        assert_eq!(&src[col..col + 7], "HashMap");
    }

    #[test]
    fn word_boundaries() {
        assert!(find_word("unwrap_or()", "unwrap").is_none());
        assert!(find_word("x.unwrap()", "unwrap").is_some());
        assert!(find_word("my_unwrap()", "unwrap").is_none());
        assert!(find_word("as u32", "u32").is_some());
    }
}
