//! `grgad-lint`: the TP-GrGAD workspace invariant checker.
//!
//! Every guarantee this workspace sells — golden CR/AUC pins, N-thread ≡
//! 1-thread bit parity, incremental ≡ full-rescore parity — rests on
//! source-level invariants: seeded RNG only, ordered iteration, no
//! panicking paths behind `Result` APIs, all concurrency through
//! `grgad-parallel`. This crate enforces them *statically*, before any
//! test runs, with a dependency-free lexer-level scanner (no rustc
//! plugin, so it works offline and on stable).
//!
//! The rule catalog lives in [`rules::Rule`]; DESIGN.md §10 documents the
//! rationale for each rule. Violations can be suppressed inline — the
//! reason is mandatory:
//!
//! ```text
//! let set: HashSet<usize> = ids.collect(); // grgad-lint: allow(D1) reason="membership-only, never iterated"
//! ```
//!
//! Run it over the workspace with `cargo run -p grgad-lint -- --workspace`
//! (exit 0 = clean, 1 = violations, 2 = usage/IO error), or on explicit
//! files. `--format json` emits the `grgad-lint/v1` report consumed by the
//! CI artifact upload.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod lockorder;
pub mod report;
pub mod rules;
pub mod scanner;

pub use lockorder::LockEdge;
pub use report::Report;
pub use rules::{Diagnostic, FileContext, FileKind, Rule};

use std::path::{Path, PathBuf};

/// Directory names never descended into: build output, vendored shims
/// (third-party API surface, not ours) and the lint fixtures (which are
/// violations *on purpose*).
const SKIP_DIRS: [&str; 4] = ["target", "vendor", "fixtures", ".git"];

/// Lints every workspace-owned Rust source under `root`.
///
/// Scans `src/`, `tests/`, `examples/` and `crates/*/{src,tests}/`,
/// skipping build output, vendored shims and lint fixtures (`SKIP_DIRS`).
/// Files are visited in sorted path order so reports are deterministic
/// across filesystems.
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    let mut files = Vec::new();
    for top in ["src", "tests", "examples", "crates"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();
    lint_files(root, &files)
}

/// Lints an explicit file list. Paths are reported relative to `root`
/// when possible, verbatim otherwise.
///
/// Two passes: the per-file rule engine first, then the cross-file
/// lock-order cycle check (C1) over the union of every file's
/// lock-acquisition edges — a cycle split across crates (one file locks
/// `a` then `b`, another `b` then `a`) is invisible to any single file.
pub fn lint_files(root: &Path, files: &[PathBuf]) -> Result<Report, String> {
    let mut report = Report::default();
    let mut edges = Vec::new();
    for path in files {
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let ctx = FileContext::classify(&rel);
        let (diags, file_edges) = rules::lint_source_edges(&src, &ctx);
        report.diagnostics.extend(diags);
        edges.extend(file_edges);
        report.files_scanned += 1;
    }
    report
        .diagnostics
        .extend(lockorder::cycle_diagnostics(&edges));
    report
        .diagnostics
        .sort_by(|a, b| (&a.path, a.line, a.col).cmp(&(&b.path, b.line, b.col)));
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir entry in {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skip_dirs_cover_fixtures_and_vendor() {
        assert!(SKIP_DIRS.contains(&"fixtures"));
        assert!(SKIP_DIRS.contains(&"vendor"));
        assert!(SKIP_DIRS.contains(&"target"));
    }

    #[test]
    fn lint_files_reports_relative_paths() {
        let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
        let file = manifest.join("src/lib.rs");
        let report = lint_files(manifest, &[file]).expect("lints");
        assert_eq!(report.files_scanned, 1);
        for d in &report.diagnostics {
            assert!(d.path.starts_with("src/"), "unexpected path {}", d.path);
        }
    }
}
