//! Lint run results and their text / JSON renderings.
//!
//! The JSON writer is hand-rolled (the checker is dependency-free by
//! design — it must stay buildable before anything else in the workspace
//! compiles) and emits keys in a fixed order so reports diff cleanly.

use crate::rules::{Diagnostic, Rule};

/// The result of linting a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of files scanned.
    pub files_scanned: usize,
    /// All findings, in (path, line, col) order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// True when the run found nothing — the exit-0 condition.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Per-rule finding counts, in catalog order (zero counts included).
    pub fn counts(&self) -> Vec<(Rule, usize)> {
        Rule::ALL
            .iter()
            .map(|&r| (r, self.diagnostics.iter().filter(|d| d.rule == r).count()))
            .collect()
    }

    /// Human-readable rendering: one `path:line:col: [ID] message` per
    /// finding plus a summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render());
            out.push('\n');
        }
        if self.is_clean() {
            out.push_str(&format!(
                "grgad-lint: {} files scanned, no violations\n",
                self.files_scanned
            ));
        } else {
            let by_rule: Vec<String> = self
                .counts()
                .into_iter()
                .filter(|&(_, n)| n > 0)
                .map(|(r, n)| format!("{} x{n}", r.id()))
                .collect();
            out.push_str(&format!(
                "grgad-lint: {} violation(s) in {} files scanned ({})\n",
                self.diagnostics.len(),
                self.files_scanned,
                by_rule.join(", ")
            ));
        }
        out
    }

    /// Machine-readable rendering (`--format json`), schema `grgad-lint/v1`.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"grgad-lint/v1\",\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"clean\": {},\n", self.is_clean()));
        out.push_str("  \"counts\": {");
        let counts = self.counts();
        for (i, (rule, n)) in counts.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {n}", rule.id()));
        }
        out.push_str("},\n");
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!("\"rule\": \"{}\", ", d.rule.id()));
            out.push_str(&format!("\"path\": {}, ", json_string(&d.path)));
            out.push_str(&format!("\"line\": {}, ", d.line));
            out.push_str(&format!("\"col\": {}, ", d.col));
            out.push_str(&format!("\"message\": {}", json_string(&d.message)));
            out.push('}');
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// Escapes `s` as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn clean_report_renders() {
        let r = Report {
            files_scanned: 3,
            diagnostics: vec![],
        };
        assert!(r.is_clean());
        assert!(r.render_text().contains("no violations"));
        assert!(r.render_json().contains("\"clean\": true"));
        assert!(r.render_json().contains("\"D1\": 0"));
    }

    #[test]
    fn dirty_report_counts() {
        let r = Report {
            files_scanned: 1,
            diagnostics: vec![Diagnostic {
                rule: Rule::D1,
                path: "x.rs".into(),
                line: 3,
                col: 7,
                message: "m".into(),
            }],
        };
        assert!(!r.is_clean());
        assert!(r.render_text().contains("x.rs:3:7: [D1] m"));
        assert!(r.render_json().contains("\"D1\": 1"));
    }
}
