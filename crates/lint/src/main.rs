//! CLI for `grgad-lint`, the workspace invariant checker.
//!
//! ```text
//! grgad-lint --workspace [--root DIR] [--format text|json]
//! grgad-lint <file.rs>… [--root DIR] [--format text|json]
//! grgad-lint --list-rules
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or IO error.

use std::path::PathBuf;
use std::process::ExitCode;

use grgad_lint::{lint_files, lint_workspace, Rule};

struct Args {
    workspace: bool,
    root: PathBuf,
    format: Format,
    list_rules: bool,
    files: Vec<PathBuf>,
}

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

const USAGE: &str = "usage: grgad-lint (--workspace | <file.rs>…) \
                     [--root DIR] [--format text|json] [--list-rules]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        workspace: false,
        root: PathBuf::from("."),
        format: Format::Text,
        list_rules: false,
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => args.workspace = true,
            "--list-rules" => args.list_rules = true,
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--format" => {
                args.format = match it.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    other => return Err(format!("--format text|json, got {other:?}")),
                };
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other}\n{USAGE}"));
            }
            file => args.files.push(PathBuf::from(file)),
        }
    }
    if !args.workspace && args.files.is_empty() && !args.list_rules {
        return Err(USAGE.to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for rule in Rule::ALL {
            println!("{:3}  {}", rule.id(), rule.title());
        }
        return ExitCode::SUCCESS;
    }
    let result = if args.workspace {
        lint_workspace(&args.root)
    } else {
        lint_files(&args.root, &args.files)
    };
    let report = match result {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("grgad-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    match args.format {
        Format::Text => print!("{}", report.render_text()),
        Format::Json => print!("{}", report.render_json()),
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
