//! The invariant rule catalog and the per-file rule engine.
//!
//! Every rule has a stable ID (used in diagnostics, JSON output and
//! suppression comments), a scope (which crates / file kinds it applies
//! to) and a lexer-level detection pattern. See DESIGN.md §10 for the
//! rationale behind each rule and the suppression policy.

use crate::lockorder::LockEdge;
use crate::scanner::{find_word_from, scan};

/// Stable rule identifiers. The numbering groups rules by family:
/// `D*` determinism, `T*` thread discipline, `P*` panic-freedom /
/// precision, `H*` hygiene, `U*` unsafe, `L*` the lint tool's own
/// directive syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// `HashMap`/`HashSet`: iteration order is nondeterministic.
    D1,
    /// Unseeded randomness or wall-clock reads in model-affecting code.
    D2,
    /// Float ordering through `partial_cmp` instead of `total_cmp`.
    D3,
    /// Raw threading (`std::thread::spawn`/`rayon`/…) outside the allowlist:
    /// `grgad-parallel` plus the serving host's socket layer.
    T1,
    /// Nested parallel primitives (oversubscription at a call site).
    T2,
    /// Cyclic lock-acquisition order across the workspace (cross-file).
    C1,
    /// `Condvar`-style `wait` not re-checked in a loop (if-guarded wait).
    C2,
    /// Lock guard held across a call into a boxed job / user callback.
    C3,
    /// Panicking calls inside `pub fn … -> Result` bodies of boundary crates.
    P1,
    /// Truncating `as` integer casts where node ids flow.
    P2,
    /// `dbg!`/`println!`-family macros in library code.
    H1,
    /// `#[allow(clippy::…)]` without a reason.
    H2,
    /// `todo!` / `unimplemented!` anywhere.
    H3,
    /// `unsafe` outside the kernel crates, or without a `SAFETY:` comment.
    U1,
    /// Malformed suppression directive (bad rule id or missing reason).
    L1,
}

impl Rule {
    /// Every rule, in catalog order.
    pub const ALL: [Rule; 15] = [
        Rule::D1,
        Rule::D2,
        Rule::D3,
        Rule::T1,
        Rule::T2,
        Rule::C1,
        Rule::C2,
        Rule::C3,
        Rule::P1,
        Rule::P2,
        Rule::H1,
        Rule::H2,
        Rule::H3,
        Rule::U1,
        Rule::L1,
    ];

    /// The stable ID string (`"D1"`, …).
    pub fn id(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::T1 => "T1",
            Rule::T2 => "T2",
            Rule::C1 => "C1",
            Rule::C2 => "C2",
            Rule::C3 => "C3",
            Rule::P1 => "P1",
            Rule::P2 => "P2",
            Rule::H1 => "H1",
            Rule::H2 => "H2",
            Rule::H3 => "H3",
            Rule::U1 => "U1",
            Rule::L1 => "L1",
        }
    }

    /// One-line summary shown by `--list-rules`.
    pub fn title(self) -> &'static str {
        match self {
            Rule::D1 => "no HashMap/HashSet (nondeterministic iteration order) — use BTreeMap/BTreeSet",
            Rule::D2 => "no unseeded RNG (thread_rng/from_entropy) or wall-clock (SystemTime, Instant outside timing seams)",
            Rule::D3 => "float ordering must use total_cmp, not partial_cmp",
            Rule::T1 => {
                "no std::thread::spawn/scope or rayon/crossbeam outside the threading \
                 allowlist (crates/parallel, crates/check + crates/server/src/worker.rs)"
            }
            Rule::T2 => "no parallel primitive inside an argument to another parallel primitive (oversubscription)",
            Rule::C1 => "lock classes must be acquired in one global order (no cross-file lock-order cycles)",
            Rule::C2 => "condvar waits must re-check their predicate in a loop, never behind a bare `if`",
            Rule::C3 => "no lock guard held across a call into a boxed job or user callback",
            Rule::P1 => "no unwrap/expect/panic!/unreachable! inside pub fn -> Result bodies of core/serve/datasets/error",
            Rule::P2 => "no truncating `as` integer casts in id-bearing crates — use try_into",
            Rule::H1 => "no dbg!/println!/eprintln! in library code",
            Rule::H2 => "no #[allow(clippy::…)] without a reason comment",
            Rule::H3 => "no todo!/unimplemented!",
            Rule::U1 => {
                "no unsafe outside linalg/parallel/store; unsafe there requires a SAFETY: comment"
            }
            Rule::L1 => "malformed grgad-lint suppression directive",
        }
    }

    /// Parses a rule ID (as written in suppression comments).
    pub fn parse(s: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.id() == s)
    }
}

/// What kind of compilation target a file belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// A library source (`src/**` outside `src/bin`).
    Lib,
    /// A binary source (`src/bin/**` or `src/main.rs`).
    Bin,
    /// An example (`examples/**`).
    Example,
    /// An integration-test file (`tests/**`).
    TestFile,
}

/// Workspace-relative classification of one source file.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Workspace-relative path with `/` separators (also the diagnostic path).
    pub rel_path: String,
    /// Short crate name: `"core"`, `"serve"`, … or `"root"` for the umbrella.
    pub crate_name: String,
    /// Target kind.
    pub kind: FileKind,
}

impl FileContext {
    /// Classifies a workspace-relative path.
    pub fn classify(rel_path: &str) -> FileContext {
        let rel = rel_path.replace('\\', "/");
        let parts: Vec<&str> = rel.split('/').collect();
        let (crate_name, rest) = if parts.first() == Some(&"crates") && parts.len() >= 2 {
            (parts[1].to_string(), &parts[2..])
        } else {
            ("root".to_string(), &parts[..])
        };
        let kind = if rest.first() == Some(&"tests") {
            FileKind::TestFile
        } else if rest.first() == Some(&"examples") {
            FileKind::Example
        } else if rest.get(1) == Some(&"bin") || rest.last() == Some(&"main.rs") {
            FileKind::Bin
        } else {
            FileKind::Lib
        };
        FileContext {
            rel_path: rel,
            crate_name,
            kind,
        }
    }
}

/// One finding, pointing at a workspace-relative `path:line:col`.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub rule: Rule,
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    pub message: String,
}

impl Diagnostic {
    /// `path:line:col: [ID] message` — the text rendering.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: [{}] {}",
            self.path,
            self.line,
            self.col,
            self.rule.id(),
            self.message
        )
    }
}

/// The parallel-primitive call names exported by `grgad-parallel`. T2
/// flags any of these appearing inside the argument list of another.
const PAR_PRIMITIVES: [&str; 5] = [
    "par_map_indexed",
    "par_map_indexed_min",
    "par_map_range",
    "par_map_range_min",
    "par_chunks_mut",
];

/// Panicking calls flagged by P1 inside `pub fn … -> Result` bodies.
/// `todo!`/`unimplemented!` are owned by H3 (which applies everywhere) and
/// deliberately not duplicated here.
const P1_MACROS: [&str; 2] = ["panic", "unreachable"];
const P1_METHODS: [&str; 2] = ["unwrap", "expect"];

/// Truncating cast targets flagged by P2 (node ids are `usize`).
const NARROW_INTS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// Crates whose `pub fn … -> Result` bodies must be panic-free (P1).
const P1_CRATES: [&str; 4] = ["core", "serve", "datasets", "error"];

/// Crates where node ids flow through integer casts (P2).
const P2_CRATES: [&str; 5] = ["graph", "serve", "datasets", "core", "sampling"];

/// Crates allowed to use `unsafe` *with* a `SAFETY:` comment (U1): the
/// compute kernels plus the mmap-backed storage layer.
const UNSAFE_CRATES: [&str; 3] = ["linalg", "parallel", "store"];

/// Crates allowed to touch `std::thread` directly (T1): the deterministic
/// pool itself, plus the model checker (its controller runs every model
/// task on a real OS thread it parks and resumes).
const T1_CRATES: [&str; 2] = ["parallel", "check"];

/// Exact files allowed to touch `std::thread` directly (T1) outside
/// [`T1_CRATES`]: the serving host's socket layer — its accept loop and
/// connection readers are I/O threads that *feed* the pool and cannot be
/// expressed as jobs on it. Keep this list to files whose module docs
/// justify the exemption.
const T1_FILES: [&str; 1] = ["crates/server/src/worker.rs"];

/// True when `ctx` is exempt from T1 via the crate or exact-file allowlist.
fn t1_exempt(ctx: &FileContext) -> bool {
    T1_CRATES.contains(&ctx.crate_name.as_str()) || T1_FILES.contains(&ctx.rel_path.as_str())
}

/// Callback-shaped identifiers whose *invocation* under a live lock guard
/// C3 flags; `catch_unwind` is included because it exists to run arbitrary
/// (user) code. Definitions (`fn handler(…)`) are excluded at the call
/// site check.
const C3_CALLBACKS: [&str; 5] = ["job", "callback", "cb", "handler", "catch_unwind"];

/// Receivers whose `.lock()` is not a mutual-exclusion lock class: stdio
/// handles (locked for buffered writes) and `self` (a named helper whose
/// class the lexical pass cannot resolve).
const LOCK_CLASS_EXEMPT: [&str; 4] = ["self", "stdin", "stdout", "stderr"];

#[derive(Debug, Default)]
struct FileState {
    brace_depth: i32,
    paren_depth: i32,
    /// Brace depth at which a `#[cfg(test)]` region opened.
    test_region: Option<i32>,
    /// A `#[cfg(test)]` attribute was seen; the next `{` opens a test
    /// region, a `;` first cancels (single-item attribute).
    pending_cfg_test: bool,
    /// Signature text being accumulated between `pub fn` and `{`/`;`.
    sig: Option<String>,
    /// Brace depths (before the opening `{`) of active `pub fn -> Result`
    /// bodies.
    result_fn_stack: Vec<i32>,
    /// Paren depths (before the opening `(`) of active parallel-primitive
    /// argument lists.
    par_stack: Vec<i32>,
    /// Brace depths (before the opening `{`) of active loop bodies
    /// (`loop` / `while` / statement-position `for`), for C2.
    loop_stack: Vec<i32>,
    /// A loop keyword was seen; the next `{` opens a loop body.
    pending_loop: bool,
    /// `let` was seen; the next identifier (skipping `mut`) names the
    /// binding of the statement in progress.
    awaiting_binding: bool,
    /// The binding name of the statement in progress, until `;`.
    let_binding: Option<String>,
    /// Live lock guards: `(lock class, binding name, brace depth at
    /// acquisition)`. Killed by `drop(binding)` or scope exit (C1, C3).
    guards: Vec<(String, String, i32)>,
    /// Last identifier of the previous line, for `.lock()` / `.wait()`
    /// receivers that rustfmt split across lines.
    last_word: Option<String>,
    /// Rules allowed by suppression comments on preceding comment-only
    /// lines, pending application to the next code line.
    pending_allows: Vec<Rule>,
    /// Comment text of the previous lines, newest last (for SAFETY: and
    /// H2 reason lookback).
    recent_comments: Vec<String>,
}

/// Lints one file's source. `ctx.rel_path` is used verbatim in
/// diagnostics. Lock-order cycles closed *within this one file* are
/// reported here too; the workspace pass ([`crate::lint_files`]) instead
/// unions every file's edges so cross-file cycles surface.
pub fn lint_source(src: &str, ctx: &FileContext) -> Vec<Diagnostic> {
    let (mut diags, edges) = lint_source_edges(src, ctx);
    diags.extend(crate::lockorder::cycle_diagnostics(&edges));
    diags
}

/// [`lint_source`], but returning the file's lock-acquisition-order edges
/// instead of resolving them: the workspace pass feeds every file's edges
/// into one cross-file cycle check (rule C1).
pub fn lint_source_edges(src: &str, ctx: &FileContext) -> (Vec<Diagnostic>, Vec<LockEdge>) {
    let lines = scan(src);
    let mut st = FileState::default();
    let mut out = Vec::new();
    let mut edges = Vec::new();

    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let code = &line.code;
        let code_empty = code.trim().is_empty();

        // --- suppression directives -------------------------------------
        let mut allows: Vec<Rule> = Vec::new();
        if !code_empty {
            allows.append(&mut st.pending_allows);
        }
        if line.comment.contains("grgad-lint:") {
            match parse_suppression(&line.comment) {
                Ok(ids) => {
                    if code_empty {
                        st.pending_allows.extend(ids);
                    } else {
                        allows.extend(ids);
                    }
                }
                Err(why) => out.push(Diagnostic {
                    rule: Rule::L1,
                    path: ctx.rel_path.clone(),
                    line: lineno,
                    col: 1,
                    message: format!("malformed suppression: {why}"),
                }),
            }
        }

        let in_test = st.test_region.is_some() || ctx.kind == FileKind::TestFile;
        let emit = |rule: Rule, col: usize, message: String, out: &mut Vec<Diagnostic>| {
            if !allows.contains(&rule) {
                out.push(Diagnostic {
                    rule,
                    path: ctx.rel_path.clone(),
                    line: lineno,
                    col: col + 1,
                    message,
                });
            }
        };

        // --- simple per-line patterns ------------------------------------
        for word in ["HashMap", "HashSet"] {
            if let Some(col) = find_word_from(code, word, 0) {
                emit(
                    Rule::D1,
                    col,
                    format!(
                        "`{word}` has nondeterministic iteration order; use \
                         `BTreeMap`/`BTreeSet`, or suppress with a reason for \
                         membership-only use"
                    ),
                    &mut out,
                );
            }
        }
        for word in ["thread_rng", "from_entropy", "SystemTime"] {
            if let Some(col) = find_word_from(code, word, 0) {
                emit(
                    Rule::D2,
                    col,
                    format!(
                        "`{word}` is nondeterministic; draw from a seeded \
                         `StdRng` (or route time through the timing seam)"
                    ),
                    &mut out,
                );
            }
        }
        if instant_in_scope(ctx, in_test) {
            if let Some(col) = find_word_from(code, "Instant", 0) {
                emit(
                    Rule::D2,
                    col,
                    "`Instant` outside the timing seams (core::stage, bench) \
                     makes model-affecting code time-dependent"
                        .to_string(),
                    &mut out,
                );
            }
        }
        if let Some(col) = find_word_from(code, "partial_cmp", 0) {
            emit(
                Rule::D3,
                col,
                "float ordering via `partial_cmp` is not NaN-robust; use \
                 `f32::total_cmp`"
                    .to_string(),
                &mut out,
            );
        }
        if !t1_exempt(ctx) {
            for pat in ["thread::spawn", "thread::scope", "thread::Builder"] {
                if let Some(col) = code.find(pat) {
                    emit(
                        Rule::T1,
                        col,
                        format!(
                            "`{pat}` outside the threading allowlist \
                             (crates/parallel + the server socket layer); all \
                             concurrency goes through the deterministic \
                             `grgad-parallel` pool"
                        ),
                        &mut out,
                    );
                }
            }
            for word in ["rayon", "crossbeam"] {
                if let Some(col) = find_word_from(code, word, 0) {
                    emit(
                        Rule::T1,
                        col,
                        format!("`{word}` outside the threading allowlist"),
                        &mut out,
                    );
                }
            }
        }
        if h1_in_scope(ctx, in_test) {
            for word in ["println", "print", "eprintln", "eprint", "dbg"] {
                if let Some(col) = macro_invocation(code, word) {
                    emit(
                        Rule::H1,
                        col,
                        format!("`{word}!` in library code; return data or use the observer seam"),
                        &mut out,
                    );
                }
            }
        }
        for word in ["todo", "unimplemented"] {
            if let Some(col) = macro_invocation(code, word) {
                emit(Rule::H3, col, format!("`{word}!` left in tree"), &mut out);
            }
        }
        if let Some(col) = code.find("allow(clippy::") {
            if !in_test && !h2_has_reason(code, &st.recent_comments, &line.comment) {
                emit(
                    Rule::H2,
                    col,
                    "clippy `allow` without a reason; add `reason = \"…\"` or a \
                     comment on the preceding line"
                        .to_string(),
                    &mut out,
                );
            }
        }
        if let Some(col) = find_word_from(code, "unsafe", 0) {
            if !UNSAFE_CRATES.contains(&ctx.crate_name.as_str()) {
                emit(
                    Rule::U1,
                    col,
                    "`unsafe` outside the kernel crates (linalg, parallel, store)".to_string(),
                    &mut out,
                );
            } else if !has_safety_comment(&st.recent_comments, &line.comment) {
                emit(
                    Rule::U1,
                    col,
                    "`unsafe` without a `SAFETY:` comment".to_string(),
                    &mut out,
                );
            }
        }
        if !in_test
            && ctx.kind != FileKind::TestFile
            && P2_CRATES.contains(&ctx.crate_name.as_str())
        {
            let mut from = 0;
            while let Some(col) = find_word_from(code, "as", from) {
                let rest = &code[col + 2..];
                let target = rest.trim_start();
                if let Some(t) = NARROW_INTS
                    .iter()
                    .find(|t| target.starts_with(**t))
                    .filter(|t| {
                        !target[t.len()..]
                            .chars()
                            .next()
                            .is_some_and(|c| c.is_alphanumeric() || c == '_')
                    })
                {
                    emit(
                        Rule::P2,
                        col,
                        format!("`as {t}` can truncate node ids; use `try_into`"),
                        &mut out,
                    );
                }
                from = col + 2;
            }
        }

        // --- stateful walk: braces, parens, cfg(test), P1 frames, T2,
        //     loop/guard tracking for C1–C3 ----------------------------
        let c1_allowed = allows.contains(&Rule::C1);
        walk_line(
            code,
            ctx,
            in_test,
            &mut st,
            &mut |rule, col, msg| emit(rule, col, msg, &mut out),
            &mut |held, acquired, col| {
                if !c1_allowed {
                    edges.push(LockEdge {
                        held,
                        acquired,
                        path: ctx.rel_path.clone(),
                        line: lineno,
                        col: col + 1,
                    });
                }
            },
        );

        // --- comment history for SAFETY:/H2 lookback ---------------------
        if code_empty {
            st.recent_comments.push(line.comment.clone());
        } else {
            st.recent_comments.clear();
            st.recent_comments.push(line.comment.clone());
        }
        if st.recent_comments.len() > 8 {
            st.recent_comments.remove(0);
        }
    }
    (out, edges)
}

/// Character-level walk of one code line: tracks brace/paren depth, opens
/// and closes `#[cfg(test)]` regions, `pub fn -> Result` frames (P1),
/// parallel-call argument spans (T2), loop bodies (C2) and live lock
/// guards (C1 edges via `record_edge`, C3).
fn walk_line(
    code: &str,
    ctx: &FileContext,
    in_test_at_line_start: bool,
    st: &mut FileState,
    emit: &mut dyn FnMut(Rule, usize, String),
    record_edge: &mut dyn FnMut(String, String, usize),
) {
    if code.contains("cfg(test)") {
        st.pending_cfg_test = true;
    }

    // Word tokens with positions, for fn/pub/par detection.
    let tokens = tokenize(code);
    let mut ti = 0;
    let mut prev_word: Option<&str> = None;

    let p1_scope = !in_test_at_line_start
        && P1_CRATES.contains(&ctx.crate_name.as_str())
        && matches!(ctx.kind, FileKind::Lib | FileKind::Bin);
    // C1–C3 apply to shipped code everywhere: library and binary sources
    // outside test regions. Test bodies synthesize deliberate deadlocks.
    let c_scope = !in_test_at_line_start && matches!(ctx.kind, FileKind::Lib | FileKind::Bin);

    let bytes = code.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        // Token events at this position.
        while ti < tokens.len() && tokens[ti].0 == i {
            let (start, end, word) = tokens[ti];
            ti += 1;
            // pub fn … -> Result signature capture. `pub` followed by a
            // qualifier like `pub(crate)` is not a public surface.
            if word == "fn" && prev_word == Some("pub") && st.sig.is_none() {
                st.sig = Some(String::new());
            }
            // Statement bindings, for guard naming (`let g = m.lock()`).
            if word == "let" {
                st.awaiting_binding = true;
            } else if st.awaiting_binding && word != "mut" {
                st.let_binding = Some(word.to_string());
                st.awaiting_binding = false;
            }
            // Loop openers, for C2. `for` is a loop only in statement
            // position — `impl Trait for Type` must not open a frame.
            if word == "loop" || word == "while" || (word == "for" && for_is_loop(code, start)) {
                st.pending_loop = true;
            }
            // `drop(guard)` releases a tracked guard early.
            if prev_word == Some("drop") {
                st.guards.retain(|(_, var, _)| var != word);
            }
            let method_call = start > 0 && bytes[start - 1] == b'.';
            if word == "lock" && method_call && next_nonspace(code, end) == Some('(') {
                let class = prev_word
                    .map(str::to_string)
                    .or_else(|| st.last_word.clone())
                    .filter(|c| !LOCK_CLASS_EXEMPT.contains(&c.as_str()));
                if let Some(class) = class {
                    if c_scope {
                        for (held, _, _) in &st.guards {
                            record_edge(held.clone(), class.clone(), start);
                        }
                        if let Some(var) = st.let_binding.take() {
                            st.guards.push((class, var, st.brace_depth));
                        }
                    }
                }
            }
            if word == "wait" && method_call && c_scope && st.loop_stack.is_empty() {
                // A condvar-style wait takes its guard as an argument;
                // `Child::wait()` and friends take none and are exempt.
                if let Some(paren) = find_call_paren(code, end) {
                    if next_nonspace(code, paren + 1) != Some(')') {
                        emit(
                            Rule::C2,
                            start,
                            "condvar `wait` outside a predicate re-check loop; \
                             spurious wakeups and racing notifies make a bare \
                             (or `if`-guarded) wait lose updates"
                                .to_string(),
                        );
                    }
                }
            }
            if c_scope
                && C3_CALLBACKS.contains(&word)
                && prev_word != Some("fn")
                && next_nonspace(code, end) == Some('(')
            {
                if let Some((class, var, _)) = st.guards.last() {
                    emit(
                        Rule::C3,
                        start,
                        format!(
                            "calling `{word}` while lock guard `{var}` (class \
                             `{class}`) is live; user code can block or re-enter \
                             the lock — drop the guard first"
                        ),
                    );
                }
            }
            if PAR_PRIMITIVES.contains(&word) && next_nonspace(code, end) == Some('(') {
                // Definition sites (`fn par_map…`) are not calls.
                if prev_word != Some("fn") && ctx.crate_name != "parallel" {
                    if !st.par_stack.is_empty() {
                        emit(
                            Rule::T2,
                            start,
                            format!(
                                "`{word}` inside an argument to another parallel \
                                 primitive: nested parallelism oversubscribes the pool"
                            ),
                        );
                    }
                    st.par_stack.push(st.paren_depth);
                }
            }
            if p1_scope && !st.result_fn_stack.is_empty() {
                if P1_METHODS.contains(&word) && next_nonspace(code, end) == Some('(') {
                    emit(
                        Rule::P1,
                        start,
                        format!(
                            "`{word}` inside a `pub fn … -> Result` body; propagate \
                             a `GrgadError` instead"
                        ),
                    );
                }
                if P1_MACROS.contains(&word) && next_nonspace(code, end) == Some('!') {
                    emit(
                        Rule::P1,
                        start,
                        format!("`{word}!` inside a `pub fn … -> Result` body"),
                    );
                }
            }
            prev_word = Some(word);
        }

        let c = bytes[i] as char;
        if st.sig.is_some() && (c == '{' || c == ';') {
            let done = std::mem::take(&mut st.sig).unwrap_or_default();
            if c == '{' && sig_returns_result(&done) {
                st.result_fn_stack.push(st.brace_depth);
            }
        } else if let Some(sig) = st.sig.as_mut() {
            sig.push(c);
        }
        match c {
            '{' => {
                if st.pending_cfg_test {
                    st.test_region = Some(st.brace_depth);
                    st.pending_cfg_test = false;
                }
                if st.pending_loop {
                    st.loop_stack.push(st.brace_depth);
                    st.pending_loop = false;
                }
                st.brace_depth += 1;
            }
            '}' => {
                st.brace_depth -= 1;
                if let Some(open) = st.test_region {
                    if st.brace_depth <= open {
                        st.test_region = None;
                    }
                }
                while st
                    .result_fn_stack
                    .last()
                    .is_some_and(|&open| st.brace_depth <= open)
                {
                    st.result_fn_stack.pop();
                }
                while st
                    .loop_stack
                    .last()
                    .is_some_and(|&open| st.brace_depth <= open)
                {
                    st.loop_stack.pop();
                }
                st.guards.retain(|(_, _, depth)| *depth <= st.brace_depth);
            }
            '(' => st.paren_depth += 1,
            ')' => {
                st.paren_depth -= 1;
                while st
                    .par_stack
                    .last()
                    .is_some_and(|&open| st.paren_depth <= open)
                {
                    st.par_stack.pop();
                }
            }
            // Statement end: cancel single-item `#[cfg(test)]` gating and
            // the binding/loop lookahead of the statement just closed.
            ';' => {
                st.pending_cfg_test = false;
                st.pending_loop = false;
                st.awaiting_binding = false;
                st.let_binding = None;
            }
            _ => {}
        }
        i += 1;
    }
    if let Some(last) = tokens.last() {
        st.last_word = Some(last.2.to_string());
    }
}

/// Is a `for` at byte `start` a loop header (statement position) rather
/// than the `for` of an `impl Trait for Type`? Loop `for`s follow nothing
/// on the line, or a block/statement boundary.
fn for_is_loop(code: &str, start: usize) -> bool {
    matches!(
        code[..start].trim_end().chars().next_back(),
        None | Some('{') | Some('}') | Some(';')
    )
}

/// Byte offset of the call paren directly after token end `from` (only
/// whitespace between), if any.
fn find_call_paren(code: &str, from: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut i = from;
    while i < bytes.len() && (bytes[i] as char).is_whitespace() {
        i += 1;
    }
    (i < bytes.len() && bytes[i] == b'(').then_some(i)
}

/// Splits a code line into `(start, end, word)` identifier tokens.
fn tokenize(code: &str) -> Vec<(usize, usize, &str)> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_alphabetic() || bytes[i] == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            out.push((start, i, &code[start..i]));
        } else {
            i += 1;
        }
    }
    out
}

fn next_nonspace(code: &str, from: usize) -> Option<char> {
    code[from..].chars().find(|c| !c.is_whitespace())
}

/// Does a captured `pub fn` signature (text between `fn` and the body)
/// declare a `Result` return type?
fn sig_returns_result(sig: &str) -> bool {
    sig.find("->")
        .is_some_and(|at| sig[at..].contains("Result"))
}

fn instant_in_scope(ctx: &FileContext, in_test: bool) -> bool {
    !in_test
        && ctx.kind == FileKind::Lib
        && ctx.crate_name != "bench"
        && ctx.rel_path != "crates/core/src/stage.rs"
}

fn h1_in_scope(ctx: &FileContext, in_test: bool) -> bool {
    !in_test && ctx.kind == FileKind::Lib && ctx.crate_name != "bench"
}

/// A macro invocation `word!` (whole word followed by `!`, not `!=`).
fn macro_invocation(code: &str, word: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(col) = find_word_from(code, word, from) {
        let rest = &code[col + word.len()..];
        if rest.starts_with('!') && !rest.starts_with("!=") {
            return Some(col);
        }
        from = col + word.len();
    }
    None
}

/// H2: an `allow(clippy::…)` is justified by an inline `reason = "…"`, a
/// trailing comment on the same line, or a comment directly above.
fn h2_has_reason(code: &str, recent_comments: &[String], line_comment: &str) -> bool {
    if code.contains("reason") {
        return true;
    }
    if !line_comment.trim().is_empty() {
        return true;
    }
    recent_comments
        .iter()
        .rev()
        .take(3)
        .any(|c| !c.trim().is_empty())
}

fn has_safety_comment(recent_comments: &[String], line_comment: &str) -> bool {
    line_comment.contains("SAFETY")
        || recent_comments
            .iter()
            .rev()
            .take(4)
            .any(|c| c.contains("SAFETY"))
}

/// Parses a suppression directive — the marker, then `allow(ID[, ID…])`,
/// then the mandatory `reason="…"` — from a line's comment text.
/// Returns the allowed rules, or a description of what is malformed.
fn parse_suppression(comment: &str) -> Result<Vec<Rule>, String> {
    let at = comment
        .find("grgad-lint:")
        .ok_or_else(|| "missing `grgad-lint:` marker".to_string())?;
    let rest = comment[at + "grgad-lint:".len()..].trim_start();
    let rest = rest
        .strip_prefix("allow(")
        .ok_or_else(|| "expected `allow(<rule-id>[, …])` after `grgad-lint:`".to_string())?;
    let close = rest
        .find(')')
        .ok_or_else(|| "unclosed `allow(` list".to_string())?;
    let ids = &rest[..close];
    let mut rules = Vec::new();
    for raw in ids.split(',') {
        let id = raw.trim();
        if id.is_empty() {
            return Err("empty rule id in `allow(…)`".to_string());
        }
        let rule =
            Rule::parse(id).ok_or_else(|| format!("unknown rule id `{id}` in `allow(…)`"))?;
        rules.push(rule);
    }
    if rules.is_empty() {
        return Err("empty `allow(…)` list".to_string());
    }
    let tail = rest[close + 1..].trim_start();
    let reason = tail
        .strip_prefix("reason=\"")
        .or_else(|| tail.strip_prefix("reason = \""))
        .ok_or_else(|| "missing required `reason=\"…\"`".to_string())?;
    let end = reason
        .find('"')
        .ok_or_else(|| "unclosed `reason=\"…\"` string".to_string())?;
    if reason[..end].trim().is_empty() {
        return Err("empty `reason=\"…\"` string".to_string());
    }
    Ok(rules)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_ctx(path: &str) -> FileContext {
        FileContext::classify(path)
    }

    #[test]
    fn classify_paths() {
        let c = FileContext::classify("crates/core/src/pipeline.rs");
        assert_eq!(c.crate_name, "core");
        assert_eq!(c.kind, FileKind::Lib);
        let c = FileContext::classify("crates/serve/src/bin/grgad_serve.rs");
        assert_eq!(c.kind, FileKind::Bin);
        let c = FileContext::classify("crates/bench/tests/bench_suite_integration.rs");
        assert_eq!(c.kind, FileKind::TestFile);
        let c = FileContext::classify("tests/parallel_parity.rs");
        assert_eq!(c.crate_name, "root");
        assert_eq!(c.kind, FileKind::TestFile);
        let c = FileContext::classify("examples/quickstart.rs");
        assert_eq!(c.kind, FileKind::Example);
    }

    #[test]
    fn suppression_grammar() {
        assert!(parse_suppression("grgad-lint: allow(D1) reason=\"membership only\"").is_ok());
        assert!(parse_suppression("grgad-lint: allow(C2) reason=\"forwarder\"").is_ok());
        assert!(
            parse_suppression("grgad-lint: allow(C1, C3) reason=\"x\"").is_ok(),
            "concurrency rule ids are suppressible"
        );
        assert_eq!(
            parse_suppression("grgad-lint: allow(D1, D3) reason=\"x\"")
                .expect("parses")
                .len(),
            2
        );
        assert!(parse_suppression("grgad-lint: allow(D1)").is_err());
        assert!(parse_suppression("grgad-lint: allow(ZZ) reason=\"x\"").is_err());
        assert!(parse_suppression("grgad-lint: allow() reason=\"x\"").is_err());
        assert!(parse_suppression("grgad-lint: allow(D1) reason=\"\"").is_err());
    }

    #[test]
    fn cfg_test_region_exempts_p1() {
        let src = r#"
pub fn f() -> Result<(), ()> {
    let x: Option<u8> = None;
    x.unwrap();
    Ok(())
}
#[cfg(test)]
mod tests {
    pub fn g() -> Result<(), ()> {
        let x: Option<u8> = None;
        x.unwrap();
        Ok(())
    }
}
"#;
        let diags = lint_source(src, &lib_ctx("crates/core/src/x.rs"));
        let p1: Vec<_> = diags.iter().filter(|d| d.rule == Rule::P1).collect();
        assert_eq!(p1.len(), 1, "{diags:?}");
        assert_eq!(p1[0].line, 4);
    }

    #[test]
    fn non_result_fn_is_not_p1() {
        let src = "pub fn f() -> usize {\n    Some(1).unwrap()\n}\n";
        let diags = lint_source(src, &lib_ctx("crates/core/src/x.rs"));
        assert!(diags.iter().all(|d| d.rule != Rule::P1), "{diags:?}");
    }

    #[test]
    fn nested_par_is_t2() {
        let src = "fn f() {\n    par_map_indexed(&xs, |_, x| par_map_range(3, |i| i + x));\n}\n";
        let diags = lint_source(src, &lib_ctx("crates/gnn/src/x.rs"));
        assert_eq!(diags.iter().filter(|d| d.rule == Rule::T2).count(), 1);
        // Sequential calls are fine.
        let src = "fn f() {\n    par_map_range(3, |i| i);\n    par_map_range(3, |i| i);\n}\n";
        let diags = lint_source(src, &lib_ctx("crates/gnn/src/x.rs"));
        assert!(diags.iter().all(|d| d.rule != Rule::T2));
    }

    #[test]
    fn suppression_silences_same_and_next_line() {
        let src = "use std::collections::HashMap; // grgad-lint: allow(D1) reason=\"k\"\n";
        assert!(lint_source(src, &lib_ctx("crates/core/src/x.rs")).is_empty());
        let src = "// grgad-lint: allow(D1) reason=\"k\"\nuse std::collections::HashMap;\n";
        assert!(lint_source(src, &lib_ctx("crates/core/src/x.rs")).is_empty());
        // …but not two lines down.
        let src =
            "// grgad-lint: allow(D1) reason=\"k\"\nlet a = 1;\nuse std::collections::HashMap;\n";
        assert_eq!(lint_source(src, &lib_ctx("crates/core/src/x.rs")).len(), 1);
    }

    #[test]
    fn t1_allowlist_is_exact() {
        let src = "fn f() {\n    std::thread::Builder::new();\n    std::thread::spawn(|| 1);\n}\n";
        // The exact allowlisted file is exempt…
        assert!(
            lint_source(src, &lib_ctx("crates/server/src/worker.rs")).is_empty(),
            "worker.rs is the server crate's one threading file"
        );
        // …but every other file in the same crate still fires, including
        // near-miss paths.
        for path in [
            "crates/server/src/lib.rs",
            "crates/server/src/scheduler.rs",
            "crates/server/src/worker/mod.rs",
            "crates/server/src/bin/grgad_server.rs",
            "crates/core/src/worker.rs",
        ] {
            let t1 = lint_source(src, &lib_ctx(path))
                .into_iter()
                .filter(|d| d.rule == Rule::T1)
                .count();
            assert_eq!(t1, 2, "{path} should fire T1 twice");
        }
        // The pool crate stays exempt wholesale.
        assert!(lint_source(src, &lib_ctx("crates/parallel/src/pool.rs")).is_empty());
    }

    #[test]
    fn patterns_in_strings_do_not_fire() {
        let src = "let s = \"HashMap thread_rng partial_cmp todo!\";\n";
        assert!(lint_source(src, &lib_ctx("crates/core/src/x.rs")).is_empty());
    }

    #[test]
    fn if_guarded_wait_is_c2_loop_shaped_is_not() {
        let bad = "fn f(m: &M) {\n    let mut g = m.state.lock();\n    if !g.ready {\n        g = m.state.wait(g);\n    }\n}\n";
        let diags = lint_source(bad, &lib_ctx("crates/gnn/src/x.rs"));
        assert_eq!(diags.iter().filter(|d| d.rule == Rule::C2).count(), 1);
        let ok = "fn f(m: &M) {\n    let mut g = m.state.lock();\n    while !g.ready {\n        g = m.state.wait(g);\n    }\n}\n";
        assert!(lint_source(ok, &lib_ctx("crates/gnn/src/x.rs")).is_empty());
    }

    #[test]
    fn process_wait_without_args_is_not_c2() {
        let src = "fn f(c: &mut Child) {\n    let _ = c.wait();\n}\n";
        assert!(lint_source(src, &lib_ctx("crates/gnn/src/x.rs")).is_empty());
    }

    #[test]
    fn impl_trait_for_does_not_open_a_loop_frame() {
        // The `for` of a trait impl is not a loop; an if-guarded wait
        // inside such an impl must still fire C2.
        let src = "impl Monitor for Gate {\n    fn park(&self) {\n        let g = self.state.lock();\n        let _g = self.state.wait(g);\n    }\n}\n";
        let diags = lint_source(src, &lib_ctx("crates/gnn/src/x.rs"));
        assert_eq!(diags.iter().filter(|d| d.rule == Rule::C2).count(), 1);
    }

    #[test]
    fn callback_under_live_guard_is_c3_released_is_not() {
        let bad = "fn f(s: &Shard, job: Job) {\n    let g = s.queue.lock();\n    job();\n}\n";
        let diags = lint_source(bad, &lib_ctx("crates/gnn/src/x.rs"));
        assert_eq!(diags.iter().filter(|d| d.rule == Rule::C3).count(), 1);
        let ok = "fn f(s: &Shard, job: Job) {\n    let g = s.queue.lock();\n    drop(g);\n    job();\n}\n";
        assert!(lint_source(ok, &lib_ctx("crates/gnn/src/x.rs")).is_empty());
        let scoped = "fn f(s: &Shard, job: Job) {\n    {\n        let g = s.queue.lock();\n    }\n    job();\n}\n";
        assert!(lint_source(scoped, &lib_ctx("crates/gnn/src/x.rs")).is_empty());
    }

    #[test]
    fn chained_receiver_split_across_lines_still_classes_the_lock() {
        // rustfmt splits long chains; the class comes from the previous
        // line's trailing identifier.
        let src = "fn f(s: &S, t: &T) {\n    let a = s\n        .state\n        .lock();\n    let b = t.queue.lock();\n    let c = s.state.lock();\n}\n";
        let (_, edges) = lint_source_edges(src, &lib_ctx("crates/gnn/src/x.rs"));
        assert_eq!(edges.len(), 3, "{edges:?}");
        assert_eq!(
            (edges[0].held.as_str(), edges[0].acquired.as_str()),
            ("state", "queue")
        );
        // Re-acquiring a held class records the self-edge (a unit cycle).
        assert!(edges
            .iter()
            .any(|e| e.held == "state" && e.acquired == "state"));
    }

    #[test]
    fn single_file_lock_order_cycle_fires_c1() {
        let src = "fn f(a: &A, b: &B) {\n    let ga = a.state.lock();\n    let gb = b.queue.lock();\n}\nfn g(a: &A, b: &B) {\n    let gb = b.queue.lock();\n    let ga = a.state.lock();\n}\n";
        let diags = lint_source(src, &lib_ctx("crates/gnn/src/x.rs"));
        assert_eq!(diags.iter().filter(|d| d.rule == Rule::C1).count(), 2);
    }

    #[test]
    fn c_rules_skip_tests_and_stdio_locks() {
        let deadlock = "fn f(a: &A, b: &B) {\n    let ga = a.state.lock();\n    let gb = b.queue.lock();\n}\nfn g(a: &A, b: &B) {\n    let gb = b.queue.lock();\n    let ga = a.state.lock();\n}\n";
        let test_ctx = lib_ctx("crates/gnn/tests/x.rs");
        assert!(lint_source(deadlock, &test_ctx).is_empty());
        let stdio = "fn f() {\n    let mut o = std::io::stdout().lock();\n    let mut e = std::io::stderr().lock();\n}\n";
        let (diags, edges) = lint_source_edges(stdio, &lib_ctx("crates/serve/src/bin/b.rs"));
        assert!(diags.is_empty(), "{diags:?}");
        assert!(
            edges.is_empty(),
            "stdio handles are not lock classes: {edges:?}"
        );
    }
}
