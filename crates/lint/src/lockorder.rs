//! Cross-file lock-order analysis (rule C1).
//!
//! The per-file walk in [`crate::rules`] records a [`LockEdge`] whenever a
//! lock of class `acquired` is taken while a guard of class `held` is
//! still lexically live in the same function. A *lock class* is the last
//! identifier of the receiver expression — `shard.queue.lock()` is class
//! `queue` — so the analysis is field-name-granular, which is exactly the
//! granularity at which this workspace names its mutexes.
//!
//! This module unions every file's edges into one directed graph over
//! classes and reports each acquisition site whose edge lies on a cycle:
//! two threads taking the same pair of classes in opposite orders can
//! deadlock, and the cure is a single global acquisition order. Cycles of
//! length one (re-acquiring the class you already hold) are reported too.
//!
//! Like every grgad-lint rule this is a lexical over-approximation:
//! acquisitions hidden behind helper functions (`self.lock()`) or guards
//! not bound by a `let` are invisible, and two same-named fields on
//! unrelated types share a class. DESIGN.md §12 discusses the trade-off;
//! the model checker in `grgad-check` covers the dynamic side.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::rules::{Diagnostic, Rule};

/// One lock-order observation: at `path:line:col`, a lock of class
/// `acquired` was taken while a guard of class `held` was live.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// Class of the guard already held.
    pub held: String,
    /// Class of the lock being acquired under it.
    pub acquired: String,
    /// Workspace-relative path of the acquisition site.
    pub path: String,
    /// 1-based line of the acquisition.
    pub line: usize,
    /// 1-based column of the acquisition.
    pub col: usize,
}

/// Reports a C1 diagnostic at every acquisition site whose edge lies on a
/// cycle in the union of `edges`. Deterministic: sites are reported in
/// input order, deduplicated by position.
pub fn cycle_diagnostics(edges: &[LockEdge]) -> Vec<Diagnostic> {
    let mut adjacency: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for edge in edges {
        adjacency
            .entry(edge.held.as_str())
            .or_default()
            .insert(edge.acquired.as_str());
    }

    let mut out = Vec::new();
    let mut seen = BTreeSet::new();
    for edge in edges {
        let Some(back) = path_between(&adjacency, &edge.acquired, &edge.held) else {
            continue;
        };
        if !seen.insert((edge.path.clone(), edge.line, edge.col)) {
            continue;
        }
        // Render the full cycle: held -> acquired -> … -> held.
        let mut cycle = vec![edge.held.as_str()];
        cycle.extend(back);
        out.push(Diagnostic {
            rule: Rule::C1,
            path: edge.path.clone(),
            line: edge.line,
            col: edge.col,
            message: format!(
                "acquiring lock class `{}` while holding `{}` closes the \
                 lock-order cycle {}; pick one global acquisition order \
                 across the workspace",
                edge.acquired,
                edge.held,
                cycle.join(" -> "),
            ),
        });
    }
    out
}

/// Shortest directed path `from -> … -> to` over `adjacency` (as the list
/// of visited nodes starting at `from`), or `None` when unreachable. A
/// zero-length path (`from == to`) counts as reachable, so self-edges
/// form cycles.
fn path_between<'a>(
    adjacency: &BTreeMap<&'a str, BTreeSet<&'a str>>,
    from: &'a str,
    to: &str,
) -> Option<Vec<&'a str>> {
    if from == to {
        return Some(vec![from]);
    }
    let mut parent: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue = VecDeque::from([from]);
    while let Some(node) = queue.pop_front() {
        for &next in adjacency.get(node).into_iter().flatten() {
            if next == from || parent.contains_key(next) {
                continue;
            }
            parent.insert(next, node);
            if next == to {
                let mut path = vec![next];
                let mut cursor = next;
                while let Some(&prev) = parent.get(cursor) {
                    path.push(prev);
                    cursor = prev;
                }
                path.reverse();
                return Some(path);
            }
            queue.push_back(next);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(held: &str, acquired: &str, line: usize) -> LockEdge {
        LockEdge {
            held: held.to_string(),
            acquired: acquired.to_string(),
            path: "crates/x/src/lib.rs".to_string(),
            line,
            col: 1,
        }
    }

    #[test]
    fn opposite_orders_across_edges_form_a_cycle() {
        let edges = [edge("a", "b", 1), edge("b", "a", 9)];
        let diags = cycle_diagnostics(&edges);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(
            diags[0].message.contains("a -> b -> a"),
            "{}",
            diags[0].message
        );
        assert_eq!(diags[1].line, 9);
    }

    #[test]
    fn consistent_order_is_clean() {
        let edges = [edge("a", "b", 1), edge("a", "b", 7), edge("b", "c", 3)];
        assert!(cycle_diagnostics(&edges).is_empty());
    }

    #[test]
    fn self_edge_is_a_unit_cycle() {
        let diags = cycle_diagnostics(&[edge("a", "a", 4)]);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("a -> a"), "{}", diags[0].message);
    }

    #[test]
    fn longer_cycles_are_traced_through_intermediates() {
        let edges = [edge("a", "b", 1), edge("b", "c", 2), edge("c", "a", 3)];
        let diags = cycle_diagnostics(&edges);
        assert_eq!(diags.len(), 3);
        assert!(
            diags[0].message.contains("a -> b -> c -> a"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn duplicate_sites_report_once() {
        let edges = [edge("a", "b", 1), edge("a", "b", 1), edge("b", "a", 2)];
        assert_eq!(cycle_diagnostics(&edges).len(), 2);
    }
}
