//! Fixture-driven rule tests: every rule ID has at least one violating
//! (`*_bad.rs`) and one clean (`*_ok.rs`) snippet under `tests/fixtures/`.
//!
//! Fixtures are plain text, never compiled and never scanned by
//! `lint_workspace` (the `fixtures` directory is skip-listed). Each file
//! declares its pretend workspace path on the first line
//! (`//@ path: crates/<crate>/src/fixture.rs`) so crate- and kind-scoped
//! rules see the right context, and marks expected violations inline:
//! `//~ ID` for this line, `//~^ ID` for the previous line (used where a
//! same-line comment would itself satisfy the rule's reason lookback, as
//! with H2).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use grgad_lint::lockorder::cycle_diagnostics;
use grgad_lint::rules::{lint_source, lint_source_edges};
use grgad_lint::{FileContext, Rule};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
}

/// Parses a fixture: returns its pretend `FileContext`, the source, and
/// the expected `(line, rule-id)` pairs, sorted.
fn parse_fixture(path: &Path) -> (FileContext, String, Vec<(usize, String)>) {
    let src = std::fs::read_to_string(path).expect("fixture readable");
    let first = src.lines().next().expect("non-empty fixture");
    let rel = first
        .strip_prefix("//@ path: ")
        .unwrap_or_else(|| panic!("{} missing `//@ path:` header", path.display()))
        .trim();
    let ctx = FileContext::classify(rel);

    let mut expected = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        let lineno = idx + 1;
        if let Some(at) = line.find("//~^") {
            for id in line[at + 4..].split_whitespace() {
                expected.push((lineno - 1, id.to_string()));
            }
        } else if let Some(at) = line.find("//~") {
            for id in line[at + 3..].split_whitespace() {
                expected.push((lineno, id.to_string()));
            }
        }
    }
    expected.sort();
    (ctx, src, expected)
}

fn diagnostics_of(path: &Path) -> Vec<(usize, String)> {
    let (ctx, src, _) = parse_fixture(path);
    let mut got: Vec<(usize, String)> = lint_source(&src, &ctx)
        .into_iter()
        .map(|d| (d.line, d.rule.id().to_string()))
        .collect();
    got.sort();
    got
}

#[test]
fn bad_fixtures_fire_exactly_the_marked_rules() {
    let dir = fixtures_dir();
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("fixtures dir") {
        let path = entry.expect("dir entry").path();
        if !path
            .file_name()
            .is_some_and(|n| n.to_string_lossy().ends_with("_bad.rs"))
        {
            continue;
        }
        let (_, _, expected) = parse_fixture(&path);
        assert!(
            !expected.is_empty(),
            "{}: a bad fixture must mark at least one expected violation",
            path.display()
        );
        let got = diagnostics_of(&path);
        assert_eq!(
            got,
            expected,
            "{}: diagnostics (line, rule) mismatch",
            path.display()
        );
        checked += 1;
    }
    assert!(checked >= 17, "expected >=17 bad fixtures, found {checked}");
}

#[test]
fn ok_fixtures_are_clean() {
    let dir = fixtures_dir();
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("fixtures dir") {
        let path = entry.expect("dir entry").path();
        if !path
            .file_name()
            .is_some_and(|n| n.to_string_lossy().ends_with("_ok.rs"))
        {
            continue;
        }
        let got = diagnostics_of(&path);
        assert!(
            got.is_empty(),
            "{}: clean fixture produced {:?}",
            path.display(),
            got
        );
        checked += 1;
    }
    assert!(checked >= 16, "expected >=16 ok fixtures, found {checked}");
}

/// The C1 pair under `fixtures/crossfile/` is clean file-by-file — each
/// file's lock order is internally consistent — and only the union of
/// their edges closes the cycle. This is the shape `lint_files` runs.
#[test]
fn cross_file_lock_order_cycle_needs_the_union() {
    let dir = fixtures_dir().join("crossfile");
    let mut edges = Vec::new();
    let mut expected = Vec::new();
    for name in ["c1_cross_a.rs", "c1_cross_b.rs"] {
        let path = dir.join(name);
        let (ctx, src, marks) = parse_fixture(&path);
        let (diags, file_edges) = lint_source_edges(&src, &ctx);
        assert!(diags.is_empty(), "{name}: per-file diagnostics {diags:?}");
        assert!(
            cycle_diagnostics(&file_edges).is_empty(),
            "{name}: must be cycle-free on its own"
        );
        for (line, id) in marks {
            expected.push((ctx.rel_path.clone(), line, id));
        }
        edges.extend(file_edges);
    }
    expected.sort();
    assert_eq!(expected.len(), 2, "both files mark their closing edge");

    let mut got: Vec<(String, usize, String)> = cycle_diagnostics(&edges)
        .into_iter()
        .map(|d| (d.path, d.line, d.rule.id().to_string()))
        .collect();
    got.sort();
    assert_eq!(got, expected, "union of edges must close the cycle");
}

#[test]
fn every_rule_id_has_positive_and_negative_coverage() {
    let dir = fixtures_dir();
    let mut fired: BTreeMap<String, usize> = BTreeMap::new();
    for entry in std::fs::read_dir(&dir).expect("fixtures dir") {
        let path = entry.expect("dir entry").path();
        if !path
            .file_name()
            .is_some_and(|n| n.to_string_lossy().ends_with("_bad.rs"))
        {
            continue;
        }
        for (_, id) in diagnostics_of(&path) {
            *fired.entry(id).or_insert(0) += 1;
        }
    }
    for rule in Rule::ALL {
        assert!(
            fired.contains_key(rule.id()),
            "rule {} has no firing bad fixture",
            rule.id()
        );
    }
}
