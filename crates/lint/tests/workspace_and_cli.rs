//! Meta-test (the committed tree is violation-free) and end-to-end CLI
//! tests for the `grgad-lint` binary: exit codes, text and JSON output.

use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    // crates/lint -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .to_path_buf()
}

/// The committed workspace must stay violation-free: this is the same
/// check CI's `lint-invariants` job runs, kept inside `cargo test` so a
/// regression fails locally before any push.
#[test]
fn committed_workspace_is_violation_free() {
    let report = grgad_lint::lint_workspace(&workspace_root()).expect("workspace scan");
    assert!(report.files_scanned > 80, "scan looks truncated");
    assert!(
        report.is_clean(),
        "workspace has lint violations:\n{}",
        report.render_text()
    );
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("grgad-lint-cli-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("src")).expect("scratch dir");
    dir
}

fn run_lint(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_grgad-lint"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn cli_flags_violations_with_exit_1_and_location() {
    let dir = scratch_dir("bad");
    let bad = dir.join("src").join("lib.rs");
    std::fs::write(
        &bad,
        "use std::collections::HashMap;\nfn f(xs: &mut [f32]) { xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n",
    )
    .expect("write fixture");

    let out = run_lint(&["--workspace", "--root", dir.to_str().expect("utf8 path")]);
    assert_eq!(out.status.code(), Some(1), "violations must exit 1");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("src/lib.rs:1:23: [D1]"), "got:\n{text}");
    assert!(
        text.contains("src/lib.rs:2:") && text.contains("[D3]"),
        "got:\n{text}"
    );
    assert!(
        text.contains("2 violation(s) in 1 files scanned"),
        "got:\n{text}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_exits_0_on_clean_tree_and_emits_json() {
    let dir = scratch_dir("clean");
    std::fs::write(
        dir.join("src").join("lib.rs"),
        "use std::collections::BTreeMap;\npub fn f() -> BTreeMap<u8, u8> { BTreeMap::new() }\n",
    )
    .expect("write fixture");

    let root = dir.to_str().expect("utf8 path");
    let out = run_lint(&["--workspace", "--root", root]);
    assert_eq!(out.status.code(), Some(0), "clean tree must exit 0");

    let out = run_lint(&["--workspace", "--root", root, "--format", "json"]);
    assert_eq!(out.status.code(), Some(0));
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(
        json.contains("\"schema\": \"grgad-lint/v1\""),
        "got:\n{json}"
    );
    assert!(json.contains("\"clean\": true"), "got:\n{json}");
    assert!(json.contains("\"diagnostics\": []"), "got:\n{json}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_list_rules_covers_the_catalog() {
    let out = run_lint(&["--list-rules"]);
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8_lossy(&out.stdout);
    for rule in grgad_lint::Rule::ALL {
        assert!(
            text.contains(rule.id()),
            "missing {} in:\n{text}",
            rule.id()
        );
    }
}

#[test]
fn cli_usage_error_exits_2() {
    let out = run_lint(&["--format", "yaml"]);
    assert_eq!(out.status.code(), Some(2), "bad flag value must exit 2");
}
