//@ path: crates/gnn/src/fixture.rs
pub fn wait_ready(monitor: &Gate) {
    let mut guard = monitor.state.lock();
    while !guard.ready {
        guard = monitor.state.wait(guard);
    }
    drop(guard);
}

pub fn wait_in_loop(monitor: &Gate) {
    let mut guard = monitor.state.lock();
    loop {
        if guard.ready {
            break;
        }
        guard = monitor.state.wait(guard);
    }
    drop(guard);
}

pub fn reap(child: &mut Child) -> i32 {
    // A no-argument wait is a process/handle wait, not a condvar wait.
    child.wait()
}
