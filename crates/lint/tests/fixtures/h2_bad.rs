//@ path: crates/gnn/src/fixture.rs
fn setup() {}

#[allow(clippy::needless_range_loop)]
pub fn walk(xs: &[u8]) { //~^ H2
    for i in 0..xs.len() {
        let _ = xs[i];
    }
}
