//@ path: crates/tsne/src/fixture.rs
use std::collections::HashMap; // grgad-lint: allow(D1) reason="fixture: suppression on the same line"

// grgad-lint: allow(D1) reason="fixture: comment-only directive applies to the next code line"
pub fn f() -> HashMap<u8, u8> {
    HashMap::new() // grgad-lint: allow(D1) reason="fixture"
}
