//@ path: crates/store/src/fixture.rs
pub fn data(ptr: *const f32, len: usize) -> &'static [f32] {
    unsafe { std::slice::from_raw_parts(ptr, len) } //~ U1
}
