//@ path: crates/core/src/fixture.rs
pub fn load(xs: &[u8]) -> Result<u8, String> {
    let first = xs.first().unwrap(); //~ P1
    let second = xs.get(1).expect("second"); //~ P1
    if *first > *second {
        panic!("unordered"); //~ P1
    }
    Ok(*first)
}
