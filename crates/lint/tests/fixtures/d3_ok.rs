//@ path: crates/tsne/src/fixture.rs
pub fn rank(xs: &mut [f32]) {
    xs.sort_by(f32::total_cmp);
}
