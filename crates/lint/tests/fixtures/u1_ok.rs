//@ path: crates/linalg/src/fixture.rs
pub fn raw(xs: &[f32]) -> f32 {
    // SAFETY: callers guarantee xs is non-empty (checked at the boundary).
    unsafe { *xs.get_unchecked(0) }
}
