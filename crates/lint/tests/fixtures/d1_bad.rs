//@ path: crates/tpgcl/src/fixture.rs
use std::collections::HashMap; //~ D1
use std::collections::HashSet; //~ D1

pub fn count(xs: &[u8]) -> usize {
    let set: HashSet<u8> = xs.iter().copied().collect(); //~ D1
    let map: HashMap<u8, u8> = HashMap::new(); //~ D1
    set.len() + map.len()
}
