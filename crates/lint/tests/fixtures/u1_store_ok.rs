//@ path: crates/store/src/fixture.rs
pub fn data(ptr: *const f32, len: usize) -> &'static [f32] {
    // SAFETY: ptr came from a live mapping of at least `len` elements,
    // validated against the file header before construction.
    unsafe { std::slice::from_raw_parts(ptr, len) }
}
