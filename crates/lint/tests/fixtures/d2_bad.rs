//@ path: crates/gnn/src/fixture.rs
pub fn noise() -> u64 {
    let mut rng = rand::thread_rng(); //~ D2
    let other = rand::rngs::StdRng::from_entropy(); //~ D2
    let now = std::time::SystemTime::now(); //~ D2
    let t0 = std::time::Instant::now(); //~ D2
    0
}
