//@ path: crates/tpgcl/src/fixture.rs
use std::collections::{BTreeMap, BTreeSet};

pub fn count(xs: &[u8]) -> usize {
    let set: BTreeSet<u8> = xs.iter().copied().collect();
    let map: BTreeMap<u8, u8> = BTreeMap::new();
    set.len() + map.len()
}
