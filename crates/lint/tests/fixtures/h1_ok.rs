//@ path: crates/bench/src/fixture.rs
pub fn train(loss: f32) {
    println!("loss = {loss}");
}
