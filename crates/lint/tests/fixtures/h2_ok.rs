//@ path: crates/gnn/src/fixture.rs
// Indexing is load-bearing: the loop writes through two slices in lockstep.
#[allow(clippy::needless_range_loop)]
pub fn walk(xs: &[u8]) {
    for i in 0..xs.len() {
        let _ = xs[i];
    }
}
