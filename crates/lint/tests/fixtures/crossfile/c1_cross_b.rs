//@ path: crates/server/src/reporting.rs
pub fn snapshot(table: &Table, stats: &Stats) {
    let gs = stats.counters.lock();
    let gt = table.routes.lock(); //~ C1
    drop(gt);
    drop(gs);
}
