//@ path: crates/gnn/src/routing.rs
pub fn route(table: &Table, stats: &Stats) {
    let gt = table.routes.lock();
    let gs = stats.counters.lock(); //~ C1
    drop(gs);
    drop(gt);
}
