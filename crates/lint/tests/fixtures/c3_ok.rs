//@ path: crates/gnn/src/fixture.rs
pub fn run_released(shard: &Shard, job: Job) {
    let guard = shard.queue.lock();
    drop(guard);
    job();
}

pub fn run_scoped(shard: &Shard, job: Job) {
    let popped = {
        let mut guard = shard.queue.lock();
        guard.pop()
    };
    job();
    drop(popped);
}

pub fn handler(shard: &Shard) {
    // Definition site of a callback-shaped name, not a call under a lock.
    let guard = shard.queue.lock();
    drop(guard);
}
