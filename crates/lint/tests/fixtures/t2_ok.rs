//@ path: crates/gnn/src/fixture.rs
pub fn sequential(n: usize) -> (Vec<f32>, Vec<f32>) {
    let a = par_map_indexed(0, n, |i| i as f32);
    let b = par_map_range(0, n, |j| j as f32);
    (a, b)
}
