//@ path: crates/server/src/scheduler.rs
// The allowlist is exact-file, not crate-wide: the rest of the server
// crate must schedule work on the executor, never spawn threads itself.
pub fn fan_out() {
    let h = std::thread::spawn(|| 1 + 1); //~ T1
    let _ = h.join();
    let b = std::thread::Builder::new().spawn(|| 2); //~ T1
    let _ = b;
}
