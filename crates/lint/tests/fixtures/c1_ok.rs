//@ path: crates/gnn/src/fixture.rs
pub fn forward(a: &Shard, b: &Shard) {
    let ga = a.state.lock();
    let gb = b.queue.lock();
    drop(gb);
    drop(ga);
}

pub fn backward(a: &Shard, b: &Shard) {
    // Same global order as `forward`: state before queue.
    let ga = a.state.lock();
    let gb = b.queue.lock();
    drop(gb);
    drop(ga);
}

pub fn sequential(a: &Shard, b: &Shard) {
    // Reversed textual order, but the first guard is gone before the
    // second acquisition: no edge, no cycle.
    let gb = b.queue.lock();
    drop(gb);
    let ga = a.state.lock();
    drop(ga);
}
