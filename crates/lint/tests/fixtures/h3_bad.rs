//@ path: crates/tsne/src/fixture.rs
pub fn later() {
    todo!("finish this") //~ H3
}

pub fn never() {
    unimplemented!() //~ H3
}
