//@ path: crates/gnn/src/fixture.rs
pub fn nested(n: usize) -> Vec<Vec<f32>> {
    par_map_indexed(0, n, |i| par_map_range(0, i, |j| j as f32)) //~ T2
}
