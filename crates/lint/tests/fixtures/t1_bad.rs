//@ path: crates/gnn/src/fixture.rs
use rayon::prelude::*; //~ T1

pub fn fan_out() {
    let h = std::thread::spawn(|| 1 + 1); //~ T1
    let _ = h.join();
    crossbeam::scope(|_| {}); //~ T1
}
