//@ path: crates/gnn/src/fixture.rs
pub fn run_under_lock(shard: &Shard, job: Job) {
    let guard = shard.queue.lock();
    job(); //~ C3
    drop(guard);
}

pub fn contain_under_lock(shard: &Shard) {
    let _guard = shard.queue.lock();
    let _ = std::panic::catch_unwind(|| 1); //~ C3
}
