//@ path: crates/graph/src/fixture.rs
pub fn pack(node: usize) -> u64 {
    let wide = node as u64;
    let checked = u32::try_from(node).unwrap_or(u32::MAX);
    wide + u64::from(checked)
}

#[cfg(test)]
mod tests {
    pub fn narrowing_in_tests(node: usize) -> u32 {
        node as u32
    }
}
