//@ path: crates/tsne/src/fixture.rs
pub fn rank(xs: &mut [f32]) {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN")); //~ D3
}
