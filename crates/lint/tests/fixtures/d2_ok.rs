//@ path: crates/core/src/stage.rs
use rand::rngs::StdRng;
use rand::SeedableRng;

pub fn seeded(seed: u64) -> StdRng {
    // Instant is allowed here: core::stage is the timing seam.
    let _t0 = std::time::Instant::now();
    StdRng::seed_from_u64(seed)
}
