//@ path: crates/gnn/src/fixture.rs
pub fn wait_once(monitor: &Gate) {
    let mut guard = monitor.state.lock();
    if !guard.ready {
        guard = monitor.state.wait(guard); //~ C2
    }
    drop(guard);
}

pub fn wait_bare(monitor: &Gate) {
    let guard = monitor.state.lock();
    let _woken = monitor.state.wait(guard); //~ C2
}
