//@ path: crates/core/src/fixture.rs
pub fn load(xs: &[u8]) -> Result<u8, String> {
    let first = xs.first().ok_or_else(|| "empty".to_string())?;
    Ok(*first)
}

fn private_helper(xs: &[u8]) -> u8 {
    *xs.first().unwrap()
}

#[cfg(test)]
mod tests {
    pub fn in_tests(xs: &[u8]) -> Result<u8, String> {
        Ok(*xs.first().unwrap())
    }
}
