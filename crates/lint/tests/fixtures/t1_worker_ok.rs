//@ path: crates/server/src/worker.rs
// The serving host's socket layer is the one file outside crates/parallel
// on the T1 allowlist: its accept loop and connection readers feed the
// deterministic pool instead of competing with it.
pub fn accept_loop() {
    let handle = std::thread::Builder::new()
        .name("grgad-conn-1".to_string())
        .spawn(|| 1 + 1);
    let _ = handle;
}
