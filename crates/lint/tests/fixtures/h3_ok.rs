//@ path: crates/tsne/src/fixture.rs
pub fn later() -> u8 {
    42
}
