//@ path: crates/graph/src/fixture.rs
pub fn pack(node: usize) -> (u32, i16) {
    (node as u32, node as i16) //~ P2 P2
}
