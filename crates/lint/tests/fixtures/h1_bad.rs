//@ path: crates/gnn/src/fixture.rs
pub fn train(loss: f32) {
    println!("loss = {loss}"); //~ H1
    dbg!(loss); //~ H1
    eprintln!("warn"); //~ H1
}
