//@ path: crates/tsne/src/fixture.rs
pub fn f() -> u8 {
    // grgad-lint: allow(D1) //~ L1
    let x = 1; // grgad-lint: allow(Q9) reason="bad id" //~ L1
    x
}
