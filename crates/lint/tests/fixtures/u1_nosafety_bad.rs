//@ path: crates/linalg/src/fixture.rs
pub fn raw(xs: &[f32]) -> f32 {
    unsafe { *xs.get_unchecked(0) } //~ U1
}
