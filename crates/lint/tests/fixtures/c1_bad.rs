//@ path: crates/gnn/src/fixture.rs
pub fn forward(a: &Shard, b: &Shard) {
    let ga = a.state.lock();
    let gb = b.queue.lock(); //~ C1
    drop(gb);
    drop(ga);
}

pub fn backward(a: &Shard, b: &Shard) {
    let gb = b.queue.lock();
    let ga = a.state.lock(); //~ C1
    drop(ga);
    drop(gb);
}
