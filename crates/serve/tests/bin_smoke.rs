//! Smoke test of the `grgad_serve` binary: the committed scripted NDJSON
//! session (`ci/session.ndjson`) piped through the real binary must
//! reproduce the committed golden responses byte-for-byte — the same check
//! the CI serve-smoke job runs with a shell pipe and `diff`.

use std::io::Write;
use std::process::{Command, Stdio};

fn repo_root() -> std::path::PathBuf {
    // crates/serve -> workspace root
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

#[test]
fn scripted_session_matches_committed_golden() {
    let root = repo_root();
    let bin = env!("CARGO_BIN_EXE_grgad_serve");

    // 1. Materialize the demo artifacts the session's `load` op references.
    let status = Command::new(bin)
        .current_dir(&root)
        .args(["--demo-artifacts", "target/serve-demo"])
        .status()
        .expect("spawn grgad_serve --demo-artifacts");
    assert!(status.success(), "demo artifact generation failed");

    // 2. Pipe the committed session through the binary.
    let script = std::fs::read_to_string(root.join("crates/serve/ci/session.ndjson"))
        .expect("read committed session script");
    let mut child = Command::new(bin)
        .current_dir(&root)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn grgad_serve");
    child
        .stdin
        .take()
        .expect("stdin")
        .write_all(script.as_bytes())
        .expect("write session");
    let output = child.wait_with_output().expect("wait");
    assert!(output.status.success());

    // 3. Byte-for-byte agreement with the committed golden.
    let got = String::from_utf8(output.stdout).expect("utf8 responses");
    let want = std::fs::read_to_string(root.join("crates/serve/ci/session.golden.ndjson"))
        .expect("read committed golden");
    assert_eq!(
        got, want,
        "binary responses drifted from ci/session.golden.ndjson — if the \
         change is intentional, regenerate the golden (see README Serving)"
    );

    // Sanity: the session exercises success and failure paths.
    assert!(want.contains("\"mode\":\"incremental\""));
    assert!(want.contains("\"kind\":\"invalid_node_id\""));
    assert!(want.contains("\"kind\":\"protocol\""));
}
