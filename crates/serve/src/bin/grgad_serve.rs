//! `grgad_serve` — the TP-GrGAD serving binary.
//!
//! Speaks the NDJSON protocol over stdin/stdout (no network dependencies):
//! one JSON request per line in, one JSON response per line out, until EOF.
//! See `grgad_serve::protocol` for the ops and the README "Serving" section
//! for a transcript.
//!
//! ```text
//! grgad_serve                          # serve stdin → stdout
//! grgad_serve --max-dirty-fraction 0.4 # tune the full-re-score fallback
//! grgad_serve --demo-artifacts DIR     # write a demo model.json + graph.json
//! grgad_serve --demo-artifacts DIR --seed 7 --nodes 60
//! ```
//!
//! `--demo-artifacts` fits a small deterministic model on the example
//! dataset and writes `model.json`/`graph.json` into `DIR`, so a scripted
//! session (e.g. the CI serve-smoke job) can `load` them without shipping
//! binary artifacts in the repository.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use std::io::{BufRead, Write};

use grgad_core::{TpGrGad, TpGrGadConfig};
use grgad_serve::{EngineConfig, Session};

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--demo-artifacts") {
        let Some(dir) = args.get(i + 1) else {
            eprintln!("--demo-artifacts requires a directory argument");
            std::process::exit(2);
        };
        let seed = flag_value(&args, "--seed").unwrap_or(11);
        let nodes = flag_value(&args, "--nodes").unwrap_or(40) as usize;
        return write_demo_artifacts(std::path::Path::new(dir), seed, nodes);
    }

    let mut engine_config = EngineConfig::builder();
    if let Some(i) = args.iter().position(|a| a == "--max-dirty-fraction") {
        let parsed = args.get(i + 1).and_then(|v| v.parse::<f32>().ok());
        let Some(fraction) = parsed else {
            eprintln!("--max-dirty-fraction requires a numeric argument");
            std::process::exit(2);
        };
        engine_config = engine_config.max_dirty_fraction(fraction);
    }
    let engine_config = engine_config.build();
    if let Err(e) = engine_config.validate() {
        eprintln!("invalid engine configuration: {e}");
        std::process::exit(2);
    }

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut input = stdin.lock();
    let mut out = stdout.lock();
    let mut session = Session::with_config(engine_config);
    // Read raw bytes rather than `lines()`: a line of invalid UTF-8 must
    // become an `ok:false` protocol-error response on the wire, not an
    // io::Error that kills the whole session.
    let mut buf = Vec::new();
    loop {
        buf.clear();
        if input.read_until(b'\n', &mut buf)? == 0 {
            break; // EOF
        }
        while matches!(buf.last(), Some(b'\n' | b'\r')) {
            buf.pop();
        }
        // Whitespace-only lines are blank separators, not requests.
        if buf.iter().all(|b| b.is_ascii_whitespace()) {
            continue;
        }
        let response = session.handle_payload(&buf);
        out.write_all(response.to_json_line().as_bytes())?;
        out.write_all(b"\n")?;
        out.flush()?;
    }
    Ok(())
}

fn flag_value(args: &[String], flag: &str) -> Option<u64> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

/// Fits a small deterministic model on the example dataset and writes the
/// `model.json` + `graph.json` pair a scripted session loads.
fn write_demo_artifacts(dir: &std::path::Path, seed: u64, nodes: usize) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let dataset = grgad_datasets::example::generate(nodes, seed);
    let model = TpGrGad::new(TpGrGadConfig::fast().with_seed(seed))
        .fit(&dataset.graph)
        .map_err(std::io::Error::from)?;
    let model_path = dir.join("model.json");
    let graph_path = dir.join("graph.json");
    model.save(&model_path).map_err(std::io::Error::from)?;
    grgad_datasets::io::save_json(&dataset, &graph_path).map_err(std::io::Error::from)?;
    eprintln!(
        "wrote {} and {} (seed={seed}, nodes={})",
        model_path.display(),
        graph_path.display(),
        dataset.graph.num_nodes()
    );
    Ok(())
}
