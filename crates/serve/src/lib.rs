//! Serving layer for TP-GrGAD: the incremental [`ScoringEngine`] plus the
//! NDJSON wire protocol spoken by the `grgad_serve` binary.
//!
//! A server session holds one [`ScoringEngine`] — a trained model bound to
//! a mutable working graph — and feeds it [`GraphDelta`] mutations between
//! score requests. Scoring is incremental at every level: reconstruction
//! errors are patched on the dirty region's GCN hop ball, candidate draws
//! replay from a memo, and only groups touching dirty regions pay the
//! per-group GCN embedding forward — with a configurable full-re-score
//! fallback once too much of the graph is dirty; either way the output is
//! bit-identical to scoring the final graph from scratch (see [`engine`]
//! and DESIGN.md §9 for the invariant, `tests/incremental_parity.rs` for
//! the proof).
//!
//! The `grgad_serve` binary speaks the [`protocol`] over stdin/stdout —
//! NDJSON request/response lines, no network dependencies — with
//! `load`/`apply_delta`/`score`/`score_groups`/`stats`/`state_save`/
//! `state_invalidate` ops. See the README "Serving" section for a session
//! transcript.

// Serving code must never panic on malformed input: every failure mode is
// a typed error on the wire. Same gate as grgad-core.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod engine;
pub mod protocol;
pub mod session;

pub use engine::{
    DeltaBatchOutcome, EngineConfig, EngineConfigBuilder, EngineStats, ScoreMode, ScoringEngine,
};
pub use grgad_error::GrgadError;
pub use protocol::{
    payload_str, GraphDelta, RequestOp, ResponseBody, ScoreRequest, ScoreResponse, TopGroup,
    MAX_REQUEST_BYTES,
};
pub use session::Session;
