//! Protocol session: dispatches parsed requests onto a [`ScoringEngine`].
//!
//! [`Session`] is the transport-free core of the `grgad_serve` binary — one
//! NDJSON line in, one response out — so scripted sessions are testable
//! in-process and the binary stays a thin stdin/stdout loop.

use grgad_core::TrainedTpGrGad;
use grgad_error::GrgadError;

use crate::engine::{EngineConfig, ScoringEngine};
use crate::protocol::{
    parse_request, GraphDelta, RequestOp, ResponseBody, ScoreResponse, TopGroup,
};

/// One serving session: at most one loaded engine, fed request lines.
#[derive(Default)]
pub struct Session {
    engine: Option<ScoringEngine>,
    config: EngineConfig,
}

impl Session {
    /// A session with nothing loaded yet and default engine knobs.
    pub fn new() -> Self {
        Self::default()
    }

    /// A session whose `load` op binds engines with the given knobs — how
    /// the `grgad_serve` binary threads `--max-dirty-fraction` through.
    /// `config` must already be validated ([`EngineConfig::validate`]);
    /// an invalid one surfaces as a `config_invalid` error at `load` time.
    pub fn with_config(config: EngineConfig) -> Self {
        Self {
            engine: None,
            config,
        }
    }

    /// The loaded engine, when a `load` has succeeded.
    pub fn engine(&self) -> Option<&ScoringEngine> {
        self.engine.as_ref()
    }

    /// Handles one request payload as raw bytes: the entry point for
    /// transports that read bytes off a wire (the stdin binary's
    /// `read_until` loop, the socket host's frames). Payloads that are
    /// empty, oversized (> [`crate::protocol::MAX_REQUEST_BYTES`]) or not
    /// valid UTF-8 become
    /// `ok:false` protocol-error responses — never a dropped request or a
    /// dead process — and valid UTF-8 takes the exact [`Self::handle_line`]
    /// path, so responses stay byte-identical across transports.
    pub fn handle_payload(&mut self, payload: &[u8]) -> ScoreResponse {
        match crate::protocol::payload_str(payload) {
            Ok(line) => self.handle_line(line),
            Err(error) => ScoreResponse::err("?", error),
        }
    }

    /// Handles one NDJSON request line; never panics — every failure mode
    /// becomes an `ok:false` response.
    pub fn handle_line(&mut self, line: &str) -> ScoreResponse {
        match parse_request(line) {
            Ok(request) => {
                let op = request.op.name();
                // apply_delta needs special casing: a batch that fails
                // part-way has still mutated the graph, and the error
                // response must report that partial progress.
                if let RequestOp::ApplyDelta { deltas } = request.op {
                    return self.apply_delta_response(op, &deltas);
                }
                match self.dispatch(request.op) {
                    Ok(body) => ScoreResponse::ok(op, body),
                    Err(error) => ScoreResponse::err(op, error),
                }
            }
            Err(error) => ScoreResponse::err("?", error),
        }
    }

    fn apply_delta_response(&mut self, op: &str, deltas: &[GraphDelta]) -> ScoreResponse {
        let engine = match self.engine_mut() {
            Ok(engine) => engine,
            Err(error) => return ScoreResponse::err(op, error),
        };
        let outcome = engine.apply_deltas(deltas);
        let dirty_nodes = engine.dirty_nodes();
        match outcome.error {
            None => ScoreResponse::ok(
                op,
                ResponseBody::Applied {
                    applied: outcome.applied,
                    new_nodes: outcome.new_nodes,
                    dirty_nodes,
                },
            ),
            Some(error) => {
                ScoreResponse::err_partial(op, error, outcome.applied, outcome.new_nodes)
            }
        }
    }

    fn engine_mut(&mut self) -> Result<&mut ScoringEngine, GrgadError> {
        self.engine
            .as_mut()
            .ok_or_else(|| GrgadError::protocol("no model loaded (send a `load` op first)"))
    }

    fn dispatch(&mut self, op: RequestOp) -> Result<ResponseBody, GrgadError> {
        match op {
            RequestOp::Load { model, graph } => {
                let model = TrainedTpGrGad::load(&model)?;
                let dataset = grgad_datasets::io::load_json(std::path::Path::new(&graph))?;
                let engine = ScoringEngine::with_config(model, dataset.graph, self.config)?;
                let body = ResponseBody::Loaded {
                    nodes: engine.graph().num_nodes(),
                    edges: engine.graph().num_edges(),
                    feature_dim: engine.graph().feature_dim(),
                };
                self.engine = Some(engine);
                Ok(body)
            }
            // Handled by `apply_delta_response` (partial-progress
            // reporting); unreachable through `handle_line`.
            RequestOp::ApplyDelta { .. } => Err(GrgadError::protocol(
                "apply_delta must go through Session::handle_line",
            )),
            RequestOp::Score { top } => {
                let engine = self.engine_mut()?;
                let (result, mode) = engine.score()?;
                Ok(ResponseBody::Scored {
                    mode,
                    candidates: result.candidate_groups.len(),
                    anomalous: result
                        .predicted_anomalous
                        .iter()
                        .filter(|&&flag| flag)
                        .count(),
                    top: top_groups(&result.candidate_groups, &result.scores, top),
                })
            }
            RequestOp::ScoreGroups { groups } => {
                let engine = self.engine_mut()?;
                let scores = engine.score_groups(&groups)?;
                Ok(ResponseBody::GroupScores { scores })
            }
            RequestOp::Stats => Ok(ResponseBody::Stats(self.engine_mut()?.stats())),
            RequestOp::StateSave { path } => {
                self.engine_mut()?.save_state(&path)?;
                Ok(ResponseBody::StateSaved { path })
            }
            RequestOp::StateInvalidate => {
                let engine = self.engine_mut()?;
                engine.invalidate_state();
                Ok(ResponseBody::StateInvalidated {
                    dirty_nodes: engine.dirty_nodes(),
                })
            }
        }
    }
}

/// The `top`-scoring groups, descending by score with index as the
/// deterministic tie-break.
fn top_groups(groups: &[grgad_graph::Group], scores: &[f32], top: usize) -> Vec<TopGroup> {
    let mut order: Vec<usize> = (0..groups.len()).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]).then(a.cmp(&b)));
    order
        .into_iter()
        .take(top)
        .map(|i| TopGroup {
            nodes: groups[i].nodes().to_vec(),
            score: scores[i],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use grgad_core::{TpGrGad, TpGrGadConfig};
    use grgad_datasets::example;

    fn artifacts(dir: &std::path::Path, seed: u64) -> (String, String) {
        std::fs::create_dir_all(dir).expect("mkdir");
        let dataset = example::generate(40, seed);
        let model = TpGrGad::new(TpGrGadConfig::fast().with_seed(seed))
            .fit(&dataset.graph)
            .expect("fit");
        let model_path = dir.join("model.json");
        let graph_path = dir.join("graph.json");
        model.save(&model_path).expect("save model");
        grgad_datasets::io::save_json(&dataset, &graph_path).expect("save graph");
        (
            model_path.display().to_string(),
            graph_path.display().to_string(),
        )
    }

    #[test]
    fn session_runs_a_full_scripted_conversation() {
        let dir = std::env::temp_dir().join("grgad_session_test");
        let (model, graph) = artifacts(&dir, 11);
        let mut session = Session::new();

        // Ops before load are protocol errors, not panics.
        let early = session.handle_line(r#"{"op":"score"}"#);
        assert!(early.result.is_err());
        assert!(early.to_json_line().contains("no model loaded"));

        let load = session.handle_line(&format!(
            r#"{{"op":"load","model":"{model}","graph":"{graph}"}}"#
        ));
        assert!(load.result.is_ok(), "{:?}", load.result);

        let score = session.handle_line(r#"{"op":"score","top":3}"#);
        let line = score.to_json_line();
        assert!(line.contains("\"mode\":\"full\""), "{line}");

        let applied = session
            .handle_line(r#"{"op":"apply_delta","deltas":[{"kind":"add_edge","u":0,"v":7}]}"#);
        assert!(applied.result.is_ok(), "{:?}", applied.result);

        let rescore = session.handle_line(r#"{"op":"score","top":3}"#);
        assert!(
            rescore.to_json_line().contains("\"mode\":\"incremental\""),
            "{}",
            rescore.to_json_line()
        );

        let stats = session.handle_line(r#"{"op":"stats"}"#);
        assert!(stats.to_json_line().contains("\"deltas_applied\":1"));
        assert!(
            stats.to_json_line().contains("\"groups_reused\""),
            "incremental-reuse counters on the wire: {}",
            stats.to_json_line()
        );

        // state_save writes a reloadable snapshot; state_invalidate forces
        // the next score back to full mode.
        let state_path = dir.join("state.json");
        let saved = session.handle_line(&format!(
            r#"{{"op":"state_save","path":"{}"}}"#,
            state_path.display()
        ));
        assert!(saved.result.is_ok(), "{:?}", saved.result);
        let snapshot = std::fs::read_to_string(&state_path).expect("state written");
        grgad_core::IncrementalState::from_json(&snapshot).expect("snapshot parses");

        let invalidated = session.handle_line(r#"{"op":"state_invalidate"}"#);
        assert!(invalidated.result.is_ok(), "{:?}", invalidated.result);
        let after = session.handle_line(r#"{"op":"score","top":1}"#);
        assert!(
            after.to_json_line().contains("\"mode\":\"full\""),
            "{}",
            after.to_json_line()
        );

        // Bad delta surfaces the typed error kind on the wire.
        let bad = session
            .handle_line(r#"{"op":"apply_delta","deltas":[{"kind":"add_edge","u":0,"v":99999}]}"#);
        assert!(bad.to_json_line().contains("\"kind\":\"invalid_node_id\""));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn byte_payloads_match_line_handling_and_reject_garbage() {
        let mut session = Session::new();
        // Valid UTF-8 bytes take the exact handle_line path.
        let via_bytes = session.handle_payload(br#"{"op":"stats"}"#).to_json_line();
        let via_line = session.handle_line(r#"{"op":"stats"}"#).to_json_line();
        assert_eq!(via_bytes, via_line);
        // Garbage becomes a typed protocol error response, not a drop.
        for (payload, needle) in [
            (&b""[..], "empty request"),
            (&[0xff, 0xfe][..], "not valid UTF-8"),
        ] {
            let line = session.handle_payload(payload).to_json_line();
            assert!(
                line.contains("\"kind\":\"protocol\"") && line.contains(needle),
                "{line}"
            );
        }
    }

    #[test]
    fn load_missing_artifacts_is_model_io() {
        let mut session = Session::new();
        let resp =
            session.handle_line(r#"{"op":"load","model":"/no/model.json","graph":"/no/g.json"}"#);
        assert!(resp.to_json_line().contains("\"kind\":\"model_io\""));
    }

    #[test]
    fn top_groups_order_is_deterministic_under_ties() {
        let groups = vec![
            grgad_graph::Group::new(vec![0]),
            grgad_graph::Group::new(vec![1]),
            grgad_graph::Group::new(vec![2]),
        ];
        let picked = top_groups(&groups, &[0.5, 0.9, 0.5], 3);
        assert_eq!(picked[0].nodes, vec![1]);
        assert_eq!(picked[1].nodes, vec![0], "tie broken by index");
        assert_eq!(picked[2].nodes, vec![2]);
        assert_eq!(top_groups(&groups, &[0.1, 0.2, 0.3], 2).len(), 2);
    }
}
