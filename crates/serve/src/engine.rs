//! The incremental [`ScoringEngine`]: a trained model plus a mutable
//! working graph, re-scored lazily over a [`GraphDelta`] stream.
//!
//! # Dirty-region re-scoring invariant
//!
//! The engine records every mutation into a persistent
//! [`grgad_core::IncrementalState`] and scores through
//! [`TrainedTpGrGad::score_incremental_observed`], which patches **three
//! levels** of cached state instead of recomputing the pipeline
//! (DESIGN.md §9):
//!
//! 1. reconstruction errors / anchors, recomputed only on the GCN
//!    receptive-field hop ball of the dirty region;
//! 2. candidate-group draws, replayed from a memo and re-searched only
//!    through dirty topology;
//! 3. group embeddings, invalidated per-member for node dirt and pairwise
//!    for edge dirt.
//!
//! The result is **bit-for-bit identical** to a from-scratch
//! [`TrainedTpGrGad::score`] on the same final graph
//! (`tests/incremental_parity.rs` proves this for seeded 200-delta streams
//! at 1 and 4 threads; the low-churn property test pins it per round).
//!
//! Past a configurable dirty fraction ([`EngineConfig::max_dirty_fraction`])
//! the engine stops pretending the caches help, clears them and reports the
//! run as a full re-score; the output is identical either way, and the full
//! run refills every cache so the next round patches again.

use std::path::Path;

use grgad_core::{IncrementalState, TpGrGadResult, TrainedTpGrGad};
use grgad_error::GrgadError;
use grgad_graph::{Graph, Group};
use serde::{Deserialize, Serialize};

use crate::protocol::GraphDelta;

pub use grgad_core::ScoreMode;

/// Tuning knobs of the [`ScoringEngine`]. Build fluently and validate at
/// the boundary, mirroring `TpGrGadConfig`:
///
/// ```
/// use grgad_serve::EngineConfig;
///
/// let config = EngineConfig::builder().max_dirty_fraction(0.4).build();
/// config.validate().expect("in bounds");
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EngineConfig {
    /// Dirty-node fraction (touched / total nodes) above which a score
    /// request skips cache patching entirely: every cache level is cleared
    /// and the run is reported as [`ScoreMode::Full`]. With most of the
    /// graph dirty, the hop balls cover nearly everything anyway.
    pub max_dirty_fraction: f32,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            max_dirty_fraction: 0.25,
        }
    }
}

impl EngineConfig {
    /// Starts a fluent builder from the default configuration.
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder::new(Self::default())
    }

    /// Checks every knob, mirroring `TpGrGadConfig::validate`.
    ///
    /// # Errors
    /// [`GrgadError::ConfigInvalid`] (wire tag `config_invalid`) naming the
    /// offending knob — here `max_dirty_fraction` outside `[0, 1]` or
    /// non-finite.
    pub fn validate(&self) -> Result<(), GrgadError> {
        if !self.max_dirty_fraction.is_finite() || !(0.0..=1.0).contains(&self.max_dirty_fraction) {
            return Err(GrgadError::config("max_dirty_fraction must be in [0, 1]"));
        }
        Ok(())
    }
}

/// Fluent builder for [`EngineConfig`]; `build` defers validation to
/// [`EngineConfig::validate`] so construction sites stay infallible and the
/// boundary ([`ScoringEngine::with_config`]) rejects bad knobs with the
/// `config_invalid` wire tag.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfigBuilder {
    config: EngineConfig,
}

impl EngineConfigBuilder {
    /// Starts from an explicit base configuration.
    pub fn new(config: EngineConfig) -> Self {
        Self { config }
    }

    /// Sets the full-re-score fallback threshold.
    pub fn max_dirty_fraction(mut self, fraction: f32) -> Self {
        self.config.max_dirty_fraction = fraction;
        self
    }

    /// Finalizes the configuration (unvalidated — see
    /// [`EngineConfig::validate`]).
    pub fn build(self) -> EngineConfig {
        self.config
    }
}

/// Engine counters, the `stats` op payload. All values are deterministic
/// functions of the request history (no wall-clock), so scripted sessions
/// golden-diff cleanly. The incremental-reuse counters (`nodes_rescored`
/// through `groups_reused`) mirror [`grgad_core::IncrementalStats`]; new
/// fields only ever append, so the payload stays backward-compatible for
/// clients that ignore unknown keys.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Nodes in the working graph.
    pub nodes: usize,
    /// Edges in the working graph.
    pub edges: usize,
    /// Feature dimensionality.
    pub feature_dim: usize,
    /// Nodes dirtied since the last score.
    pub dirty_nodes: usize,
    /// Deltas applied over the engine's lifetime.
    pub deltas_applied: u64,
    /// Score runs served incrementally.
    pub scores_incremental: u64,
    /// Score runs served as full re-scores.
    pub scores_full: u64,
    /// Group embeddings currently cached.
    pub cache_entries: usize,
    /// Lifetime cache hits (embedding forwards skipped).
    pub cache_hits: u64,
    /// Lifetime cache misses (embedding forwards computed).
    pub cache_misses: u64,
    /// Nodes whose reconstruction errors were recomputed, summed over all
    /// scores (a full score counts every node).
    pub nodes_rescored: u64,
    /// Anchor slots that re-selected a previous-round anchor.
    pub anchors_reused: u64,
    /// Candidate draws answered by running a graph search.
    pub groups_resampled: u64,
    /// Candidate draws answered from the draw cache.
    pub groups_reused: u64,
}

/// The outcome of a delta batch: how far it got, what node ids were
/// assigned, and the error that stopped it (if any). Partial state is
/// reported even on failure — earlier deltas stay applied, and a client
/// that never learned about them would target wrong nodes from then on.
#[derive(Clone, Debug, PartialEq)]
pub struct DeltaBatchOutcome {
    /// Deltas successfully applied (== the batch length on success).
    pub applied: usize,
    /// Node ids assigned to successful `AddNode` deltas, in order.
    pub new_nodes: Vec<usize>,
    /// The error that stopped the batch, `None` when it ran to completion.
    pub error: Option<GrgadError>,
}

/// A trained TP-GrGAD model bound to a mutable working graph, scoring
/// incrementally over graph deltas. See the module docs for the
/// dirty-region invariant.
pub struct ScoringEngine {
    model: TrainedTpGrGad,
    graph: Graph,
    state: IncrementalState,
    deltas_applied: u64,
}

impl ScoringEngine {
    /// Binds a trained model to an initial working graph.
    ///
    /// # Errors
    /// Whatever [`TrainedTpGrGad::check_compat`] rejects (feature-dim
    /// mismatch, empty graph, non-finite features).
    pub fn new(model: TrainedTpGrGad, graph: Graph) -> Result<Self, GrgadError> {
        Self::with_config(model, graph, EngineConfig::default())
    }

    /// [`ScoringEngine::new`] with explicit tuning knobs.
    ///
    /// # Errors
    /// Whatever [`EngineConfig::validate`] or
    /// [`TrainedTpGrGad::check_compat`] rejects.
    pub fn with_config(
        model: TrainedTpGrGad,
        graph: Graph,
        config: EngineConfig,
    ) -> Result<Self, GrgadError> {
        config.validate()?;
        model.check_compat(&graph)?;
        let state = IncrementalState::new().with_max_dirty_fraction(config.max_dirty_fraction)?;
        Ok(Self {
            model,
            graph,
            state,
            deltas_applied: 0,
        })
    }

    /// The trained model the engine scores with.
    pub fn model(&self) -> &TrainedTpGrGad {
        &self.model
    }

    /// The current working graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Nodes touched by deltas since the last score (re-featured or
    /// appended nodes plus endpoints of changed edges) — the numerator of
    /// the dirty fraction.
    pub fn dirty_nodes(&self) -> usize {
        self.state.dirty().touched_nodes().len()
    }

    /// Applies one delta to the working graph, validating it first; an
    /// invalid delta leaves the graph untouched. Returns the assigned node
    /// id for [`GraphDelta::AddNode`], `None` otherwise.
    ///
    /// # Errors
    /// [`GrgadError::InvalidNodeId`] for out-of-range endpoints/nodes,
    /// [`GrgadError::ShapeMismatch`] for a feature row of the wrong width,
    /// [`GrgadError::NonFiniteInput`] for NaN/infinite features.
    pub fn apply_delta(&mut self, delta: &GraphDelta) -> Result<Option<usize>, GrgadError> {
        let new_node = match delta {
            GraphDelta::AddNode { features } => {
                let id = self.graph.try_add_node(features)?;
                self.state.mark_node(id);
                Some(id)
            }
            GraphDelta::AddEdge { u, v } => {
                if self.graph.try_add_edge(*u, *v)? {
                    self.state.mark_edge(*u, *v);
                }
                None
            }
            GraphDelta::RemoveEdge { u, v } => {
                if self.graph.try_remove_edge(*u, *v)? {
                    self.state.mark_edge(*u, *v);
                }
                None
            }
            GraphDelta::SetFeatures { node, features } => {
                self.graph.try_set_node_features(*node, features)?;
                self.state.mark_node(*node);
                None
            }
        };
        self.deltas_applied += 1;
        Ok(new_node)
    }

    /// Applies a batch of deltas in order, stopping at the first invalid
    /// one (earlier deltas stay applied). The outcome always reports how
    /// many deltas were applied and the node ids assigned to successful
    /// `AddNode` deltas — **including on failure** — so a client can stay
    /// in sync with the server's graph state instead of silently
    /// desynchronizing after a partially applied batch.
    pub fn apply_deltas(&mut self, deltas: &[GraphDelta]) -> DeltaBatchOutcome {
        let mut outcome = DeltaBatchOutcome {
            applied: 0,
            new_nodes: Vec::new(),
            error: None,
        };
        for delta in deltas {
            match self.apply_delta(delta) {
                Ok(Some(id)) => outcome.new_nodes.push(id),
                Ok(None) => {}
                Err(e) => {
                    outcome.error = Some(e);
                    return outcome;
                }
            }
            outcome.applied += 1;
        }
        outcome
    }

    /// Scores the current working graph by patching the persistent
    /// incremental state. Bit-identical to `self.model().score(self.graph())`
    /// by the dirty-region invariant (module docs); the recorded dirt is
    /// consumed on success.
    ///
    /// # Errors
    /// Whatever [`TrainedTpGrGad::score`] rejects.
    pub fn score(&mut self) -> Result<(TpGrGadResult, ScoreMode), GrgadError> {
        self.score_observed(&mut grgad_core::NullObserver)
    }

    /// [`ScoringEngine::score`] with a [`grgad_core::PipelineObserver`]
    /// receiving per-stage reports — the serving host's telemetry hook.
    /// Observation is read-only: results are bit-identical to
    /// [`ScoringEngine::score`] from the same engine state.
    pub fn score_observed(
        &mut self,
        observer: &mut dyn grgad_core::PipelineObserver,
    ) -> Result<(TpGrGadResult, ScoreMode), GrgadError> {
        self.model
            .score_incremental_observed(&self.graph, &mut self.state, observer)
    }

    /// Scores caller-supplied raw node-id lists on the working graph.
    /// Each list is validated and canonicalized (sorted, **deduplicated**,
    /// in-range, non-empty) through `Group::try_new` before scoring, so a
    /// request repeating a node id scores the group once per occurrence of
    /// the *group*, never double-counting the repeated member.
    pub fn score_groups(&self, raw_groups: &[Vec<usize>]) -> Result<Vec<f32>, GrgadError> {
        let groups = raw_groups
            .iter()
            .map(|ids| Group::try_new(ids.iter().copied(), self.graph.num_nodes()))
            .collect::<Result<Vec<_>, _>>()?;
        self.model.score_groups(&self.graph, &groups)
    }

    /// Drops every cached level of the incremental state (the
    /// `state_invalidate` op). The next score recomputes from scratch — and
    /// refills the caches. Counters and pending dirt are kept.
    pub fn invalidate_state(&mut self) {
        self.state.invalidate();
    }

    /// Persists the incremental state as JSON (the `state_save` op).
    ///
    /// # Errors
    /// [`GrgadError::ModelIo`] carrying the path and the cause.
    pub fn save_state(&self, path: impl AsRef<Path>) -> Result<(), GrgadError> {
        self.state.save(path)
    }

    /// Deterministic engine counters (the `stats` op).
    pub fn stats(&self) -> EngineStats {
        let inner = self.state.stats();
        EngineStats {
            nodes: self.graph.num_nodes(),
            edges: self.graph.num_edges(),
            feature_dim: self.graph.feature_dim(),
            dirty_nodes: self.dirty_nodes(),
            deltas_applied: self.deltas_applied,
            scores_incremental: inner.scores_incremental,
            scores_full: inner.scores_full,
            cache_entries: inner.cached_embeddings,
            cache_hits: inner.cache_hits,
            cache_misses: inner.cache_misses,
            nodes_rescored: inner.nodes_rescored,
            anchors_reused: inner.anchors_reused,
            groups_resampled: inner.groups_resampled,
            groups_reused: inner.groups_reused,
        }
    }
}

#[cfg(test)]
impl ScoringEngine {
    fn stats_inner_for_test(&self) -> grgad_core::IncrementalStats {
        self.state.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grgad_core::{TpGrGad, TpGrGadConfig};
    use grgad_datasets::example;

    fn trained_pair(seed: u64) -> (TrainedTpGrGad, Graph) {
        let dataset = example::generate(40, seed);
        let model = TpGrGad::new(TpGrGadConfig::fast().with_seed(seed))
            .fit(&dataset.graph)
            .expect("fit");
        (model, dataset.graph)
    }

    #[test]
    fn engine_scores_match_full_rescoring_after_deltas() {
        let (model, graph) = trained_pair(3);
        let mut engine = ScoringEngine::new(model, graph).expect("engine");
        let (first, mode) = engine.score().expect("first score");
        assert_eq!(mode, ScoreMode::Full);
        assert!(!first.scores.is_empty());

        // Mutate a corner of the graph, then check incremental == full.
        let deltas = [
            GraphDelta::AddEdge { u: 0, v: 5 },
            GraphDelta::SetFeatures {
                node: 2,
                features: vec![0.5; engine.graph().feature_dim()],
            },
            GraphDelta::RemoveEdge { u: 0, v: 5 },
        ];
        for delta in &deltas {
            engine.apply_delta(delta).expect("delta");
        }
        assert!(engine.dirty_nodes() > 0);
        let (incremental, mode) = engine.score().expect("incremental score");
        assert_eq!(mode, ScoreMode::Incremental);
        let full = engine
            .model()
            .score(&engine.graph().clone())
            .expect("full score");
        assert_eq!(incremental.scores, full.scores);
        assert_eq!(incremental.candidate_groups, full.candidate_groups);
        assert_eq!(incremental.predicted_anomalous, full.predicted_anomalous);
        assert_eq!(engine.dirty_nodes(), 0, "dirty set resets after scoring");
    }

    #[test]
    fn dirty_fraction_fallback_goes_full() {
        let (model, graph) = trained_pair(4);
        let dim = graph.feature_dim();
        let mut engine = ScoringEngine::with_config(
            model,
            graph,
            EngineConfig::builder().max_dirty_fraction(0.05).build(),
        )
        .expect("engine");
        let _ = engine.score().expect("warm-up");
        // Dirty well past 5% of nodes.
        let n = engine.graph().num_nodes();
        for node in 0..n / 2 {
            engine
                .apply_delta(&GraphDelta::SetFeatures {
                    node,
                    features: vec![0.25; dim],
                })
                .expect("delta");
        }
        let (result, mode) = engine.score().expect("score");
        assert_eq!(mode, ScoreMode::Full);
        let full = engine.model().score(engine.graph()).expect("full");
        assert_eq!(result.scores, full.scores);
    }

    #[test]
    fn engine_config_builder_validates_at_the_boundary() {
        assert_eq!(
            EngineConfig::builder().build(),
            EngineConfig::default(),
            "builder defaults match Default"
        );
        for bad in [-0.5, 1.5, f32::NAN] {
            let config = EngineConfig::builder().max_dirty_fraction(bad).build();
            assert!(matches!(
                config.validate().unwrap_err(),
                GrgadError::ConfigInvalid { .. }
            ));
            let (model, graph) = trained_pair(12);
            let err = ScoringEngine::with_config(model, graph, config)
                .err()
                .expect("bad config must be rejected");
            assert!(matches!(err, GrgadError::ConfigInvalid { .. }), "{err:?}");
        }
    }

    /// Satellite regression: RemoveEdge→AddEdge of the same edge inside one
    /// batch nets out to an unchanged graph but must still dirty both
    /// endpoints, so stale pairwise rows cannot survive the round.
    #[test]
    fn remove_then_readd_same_edge_in_one_batch_still_invalidates() {
        let (model, graph) = trained_pair(10);
        // Pick an existing edge.
        let (u, v) = {
            let mut found = None;
            'outer: for u in 0..graph.num_nodes() {
                for v in (u + 1)..graph.num_nodes() {
                    if graph.has_edge(u, v) {
                        found = Some((u, v));
                        break 'outer;
                    }
                }
            }
            found.expect("example graph has an edge")
        };
        let mut engine = ScoringEngine::new(model, graph).expect("engine");
        let (baseline, _) = engine.score().expect("baseline");

        let outcome = engine.apply_deltas(&[
            GraphDelta::RemoveEdge { u, v },
            GraphDelta::AddEdge { u, v },
        ]);
        assert_eq!(outcome.error, None);
        assert!(
            engine.dirty_nodes() >= 2,
            "net-unchanged edge pair must still dirty its endpoints"
        );
        let (rescored, mode) = engine.score().expect("rescore");
        assert_eq!(mode, ScoreMode::Incremental);
        assert_eq!(rescored.scores, baseline.scores);
        assert_eq!(rescored.candidate_groups, baseline.candidate_groups);
    }

    #[test]
    fn invalid_deltas_are_rejected_and_leave_graph_untouched() {
        let (model, graph) = trained_pair(5);
        let dim = graph.feature_dim();
        let edges_before = graph.num_edges();
        let mut engine = ScoringEngine::new(model, graph).expect("engine");
        let n = engine.graph().num_nodes();

        assert!(matches!(
            engine
                .apply_delta(&GraphDelta::AddEdge { u: 0, v: n + 7 })
                .unwrap_err(),
            GrgadError::InvalidNodeId { .. }
        ));
        assert!(matches!(
            engine
                .apply_delta(&GraphDelta::SetFeatures {
                    node: 0,
                    features: vec![0.0; dim + 1],
                })
                .unwrap_err(),
            GrgadError::ShapeMismatch { .. }
        ));
        assert!(matches!(
            engine
                .apply_delta(&GraphDelta::AddNode {
                    features: vec![f32::NAN; dim],
                })
                .unwrap_err(),
            GrgadError::NonFiniteInput { .. }
        ));
        assert_eq!(engine.graph().num_edges(), edges_before);
        assert_eq!(engine.graph().num_nodes(), n);
        assert_eq!(engine.dirty_nodes(), 0);
    }

    #[test]
    fn add_node_reports_assigned_ids_and_batches_stop_at_first_error() {
        let (model, graph) = trained_pair(6);
        let dim = graph.feature_dim();
        let n = graph.num_nodes();
        let mut engine = ScoringEngine::new(model, graph).expect("engine");

        let outcome = engine.apply_deltas(&[
            GraphDelta::AddNode {
                features: vec![0.1; dim],
            },
            GraphDelta::AddEdge { u: 0, v: n },
        ]);
        assert_eq!(outcome.error, None);
        assert_eq!((outcome.applied, outcome.new_nodes), (2, vec![n]));
        assert!(engine.graph().has_edge(0, n));

        // A batch failing part-way still reports how far it got and the
        // node ids it assigned — the client's only way to stay in sync
        // with the partially mutated working graph.
        let outcome = engine.apply_deltas(&[
            GraphDelta::AddNode {
                features: vec![0.2; dim],
            },
            GraphDelta::AddEdge { u: 1, v: 2 },
            GraphDelta::AddEdge { u: 0, v: 99_999 },
        ]);
        assert!(matches!(
            outcome.error,
            Some(GrgadError::InvalidNodeId { .. })
        ));
        assert_eq!(outcome.applied, 2, "two deltas landed before the error");
        assert_eq!(outcome.new_nodes, vec![n + 1], "assigned id reported");
        assert!(engine.graph().has_edge(1, 2));
        assert_eq!(engine.graph().num_nodes(), n + 2);
    }

    #[test]
    fn observed_scoring_is_bit_identical_and_reports_stages() {
        // trained_pair is deterministic, so two calls with one seed give
        // identical engines (TrainedTpGrGad is deliberately not Clone).
        let (model_a, graph_a) = trained_pair(9);
        let (model_b, graph_b) = trained_pair(9);
        let mut plain = ScoringEngine::new(model_a, graph_a).expect("engine");
        let mut observed = ScoringEngine::new(model_b, graph_b).expect("engine");

        let mut timings = grgad_core::TimingObserver::new();
        let (a, mode_a) = plain.score().expect("plain score");
        let (b, mode_b) = observed.score_observed(&mut timings).expect("observed");
        assert_eq!(mode_a, mode_b);
        assert_eq!(a.scores, b.scores, "observer must not perturb scores");
        assert_eq!(a.candidate_groups, b.candidate_groups);
        assert!(!timings.stages.is_empty(), "stages were reported");
        assert!(
            timings.stages.iter().all(|s| s.train_epochs == 0),
            "serving never trains"
        );

        // Incremental path reports stages too, and stays bit-identical.
        let dim = observed.graph().feature_dim();
        for engine in [&mut plain, &mut observed] {
            engine
                .apply_delta(&GraphDelta::SetFeatures {
                    node: 1,
                    features: vec![0.75; dim],
                })
                .expect("delta");
        }
        let before = timings.stages.len();
        let (a, mode_a) = plain.score().expect("plain rescore");
        let (b, mode_b) = observed.score_observed(&mut timings).expect("observed");
        assert_eq!(
            (mode_a, mode_b),
            (ScoreMode::Incremental, ScoreMode::Incremental)
        );
        assert_eq!(a.scores, b.scores);
        assert!(timings.stages.len() > before);
    }

    #[test]
    fn score_groups_dedups_raw_ids_at_the_boundary() {
        let (model, graph) = trained_pair(7);
        let engine = ScoringEngine::new(model, graph).expect("engine");
        let scores = engine
            .score_groups(&[vec![0, 1, 2], vec![2, 1, 0, 1, 2, 2]])
            .expect("scores");
        assert_eq!(scores[0], scores[1], "duplicate ids must be deduped");
        assert!(matches!(
            engine.score_groups(&[vec![999_999]]).unwrap_err(),
            GrgadError::InvalidNodeId { .. }
        ));
        assert!(matches!(
            engine.score_groups(&[vec![]]).unwrap_err(),
            GrgadError::EmptyGroup { .. }
        ));
    }

    #[test]
    fn stats_track_counters_deterministically() {
        let (model, graph) = trained_pair(8);
        let mut engine = ScoringEngine::new(model, graph).expect("engine");
        let before = engine.stats();
        assert_eq!(before.deltas_applied, 0);
        assert_eq!(before.scores_full + before.scores_incremental, 0);
        assert_eq!(before.nodes_rescored, 0);

        let _ = engine.score().expect("score");
        engine
            .apply_delta(&GraphDelta::AddEdge { u: 0, v: 1 })
            .expect("delta");
        let _ = engine.score().expect("score");
        let stats = engine.stats();
        assert_eq!(stats.deltas_applied, 1);
        assert_eq!(stats.scores_full, 1);
        assert_eq!(stats.scores_incremental, 1);
        assert!(stats.cache_entries > 0);
        assert!(stats.cache_hits > 0, "{stats:?}");
        assert!(stats.groups_reused > 0, "draws replayed on round two");
        assert!(stats.anchors_reused > 0, "anchor overlap across rounds");
        assert!(
            stats.nodes_rescored >= engine.graph().num_nodes() as u64,
            "full round rescores everything"
        );

        let json = serde_json::to_string(&stats).expect("stats serialize");
        let back: EngineStats = serde_json::from_str(&json).expect("stats parse");
        assert_eq!(back, stats);
    }

    #[test]
    fn invalidate_and_save_round_trip_engine_state() {
        let (model, graph) = trained_pair(13);
        let mut engine = ScoringEngine::new(model, graph).expect("engine");
        let (baseline, _) = engine.score().expect("score");

        let path =
            std::env::temp_dir().join(format!("grgad_engine_state_{}.json", std::process::id()));
        engine.save_state(&path).expect("save");
        let restored =
            grgad_core::IncrementalState::from_json(&std::fs::read_to_string(&path).expect("read"))
                .expect("parse");
        assert_eq!(restored.stats(), engine.stats_inner_for_test());
        let _ = std::fs::remove_file(&path);

        engine.invalidate_state();
        let (again, mode) = engine.score().expect("rescore");
        assert_eq!(mode, ScoreMode::Full, "invalidated state goes full");
        assert_eq!(again.scores, baseline.scores);
    }
}
