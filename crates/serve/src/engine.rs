//! The incremental [`ScoringEngine`]: a trained model plus a mutable
//! working graph, re-scored lazily over a [`GraphDelta`] stream.
//!
//! # Dirty-region re-scoring invariant
//!
//! The engine tracks the set of *dirty nodes* — every node touched by a
//! delta since the last score (both endpoints of an edge change, re-featured
//! nodes, appended nodes). At score time it drops exactly the cached group
//! embeddings containing a dirty node and reuses the rest
//! ([`grgad_core::GroupEmbeddingCache`]). Because a group's embedding
//! depends only on its members' feature rows and induced edges — both
//! untouched for a cache-valid group — and the per-group GCN forward writes
//! index-addressed output slots independent of batch composition, the
//! incremental result is **bit-for-bit identical** to a from-scratch
//! [`TrainedTpGrGad::score`] on the same final graph
//! (`tests/incremental_parity.rs` proves this for seeded 200-delta streams
//! at 1 and 4 threads). The other stages (anchor inference, sampling,
//! detector scoring) re-run fully: their outputs depend on global graph
//! state, and they are cheap relative to the per-group embedding forwards.
//!
//! Past a configurable dirty fraction ([`EngineConfig::max_dirty_fraction`])
//! the engine stops pretending the cache helps, clears it and reports the
//! run as a full re-score; the output is identical either way.

use std::collections::BTreeSet;

use grgad_core::{GroupEmbeddingCache, TpGrGadResult, TrainedTpGrGad};
use grgad_error::GrgadError;
use grgad_graph::{Graph, Group};
use serde::{Deserialize, Serialize};

use crate::protocol::GraphDelta;

/// Tuning knobs of the [`ScoringEngine`].
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Dirty-node fraction (dirty / total nodes) above which a score
    /// request skips cache reuse entirely: the cache is cleared and the run
    /// is reported as [`ScoreMode::Full`]. With most of the graph dirty,
    /// per-entry invalidation would evict nearly everything anyway.
    pub max_dirty_fraction: f32,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            max_dirty_fraction: 0.25,
        }
    }
}

/// How a score request was served.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScoreMode {
    /// Cached group embeddings were reused for clean groups.
    Incremental,
    /// Everything was recomputed (first score, or dirty fraction exceeded
    /// [`EngineConfig::max_dirty_fraction`]).
    Full,
}

impl ScoreMode {
    /// Wire name (`incremental` | `full`).
    pub fn name(&self) -> &'static str {
        match self {
            ScoreMode::Incremental => "incremental",
            ScoreMode::Full => "full",
        }
    }
}

/// Engine counters, the `stats` op payload. All values are deterministic
/// functions of the request history (no wall-clock), so scripted sessions
/// golden-diff cleanly.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Nodes in the working graph.
    pub nodes: usize,
    /// Edges in the working graph.
    pub edges: usize,
    /// Feature dimensionality.
    pub feature_dim: usize,
    /// Nodes dirtied since the last score.
    pub dirty_nodes: usize,
    /// Deltas applied over the engine's lifetime.
    pub deltas_applied: u64,
    /// Score runs served incrementally.
    pub scores_incremental: u64,
    /// Score runs served as full re-scores.
    pub scores_full: u64,
    /// Group embeddings currently cached.
    pub cache_entries: usize,
    /// Lifetime cache hits (embedding forwards skipped).
    pub cache_hits: u64,
    /// Lifetime cache misses (embedding forwards computed).
    pub cache_misses: u64,
}

/// The outcome of a delta batch: how far it got, what node ids were
/// assigned, and the error that stopped it (if any). Partial state is
/// reported even on failure — earlier deltas stay applied, and a client
/// that never learned about them would target wrong nodes from then on.
#[derive(Clone, Debug, PartialEq)]
pub struct DeltaBatchOutcome {
    /// Deltas successfully applied (== the batch length on success).
    pub applied: usize,
    /// Node ids assigned to successful `AddNode` deltas, in order.
    pub new_nodes: Vec<usize>,
    /// The error that stopped the batch, `None` when it ran to completion.
    pub error: Option<GrgadError>,
}

/// A trained TP-GrGAD model bound to a mutable working graph, scoring
/// incrementally over graph deltas. See the module docs for the
/// dirty-region invariant.
pub struct ScoringEngine {
    model: TrainedTpGrGad,
    graph: Graph,
    cache: GroupEmbeddingCache,
    /// Nodes whose own state changed (features set, node appended) — a
    /// cached group containing any of these is invalid.
    dirty_nodes: BTreeSet<usize>,
    /// Changed edges — a cached group is only invalid when it contains
    /// **both** endpoints (its induced subgraph is untouched otherwise),
    /// so these invalidate pairwise instead of per-endpoint.
    dirty_edges: BTreeSet<(usize, usize)>,
    config: EngineConfig,
    deltas_applied: u64,
    scores_incremental: u64,
    scores_full: u64,
}

impl ScoringEngine {
    /// Binds a trained model to an initial working graph.
    ///
    /// # Errors
    /// Whatever [`TrainedTpGrGad::check_compat`] rejects (feature-dim
    /// mismatch, empty graph, non-finite features).
    pub fn new(model: TrainedTpGrGad, graph: Graph) -> Result<Self, GrgadError> {
        Self::with_config(model, graph, EngineConfig::default())
    }

    /// [`ScoringEngine::new`] with explicit tuning knobs.
    pub fn with_config(
        model: TrainedTpGrGad,
        graph: Graph,
        config: EngineConfig,
    ) -> Result<Self, GrgadError> {
        if !(0.0..=1.0).contains(&config.max_dirty_fraction) {
            return Err(GrgadError::config("max_dirty_fraction must be in [0, 1]"));
        }
        model.check_compat(&graph)?;
        Ok(Self {
            model,
            graph,
            cache: GroupEmbeddingCache::new(),
            dirty_nodes: BTreeSet::new(),
            dirty_edges: BTreeSet::new(),
            config,
            deltas_applied: 0,
            scores_incremental: 0,
            scores_full: 0,
        })
    }

    /// The trained model the engine scores with.
    pub fn model(&self) -> &TrainedTpGrGad {
        &self.model
    }

    /// The current working graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Nodes touched by deltas since the last score (re-featured or
    /// appended nodes plus endpoints of changed edges) — the numerator of
    /// the dirty fraction.
    pub fn dirty_nodes(&self) -> usize {
        self.touched_nodes().len()
    }

    fn touched_nodes(&self) -> BTreeSet<usize> {
        let mut touched = self.dirty_nodes.clone();
        for &(u, v) in &self.dirty_edges {
            touched.insert(u);
            touched.insert(v);
        }
        touched
    }

    /// Applies one delta to the working graph, validating it first; an
    /// invalid delta leaves the graph untouched. Returns the assigned node
    /// id for [`GraphDelta::AddNode`], `None` otherwise.
    ///
    /// # Errors
    /// [`GrgadError::InvalidNodeId`] for out-of-range endpoints/nodes,
    /// [`GrgadError::ShapeMismatch`] for a feature row of the wrong width,
    /// [`GrgadError::NonFiniteInput`] for NaN/infinite features.
    pub fn apply_delta(&mut self, delta: &GraphDelta) -> Result<Option<usize>, GrgadError> {
        let new_node = match delta {
            GraphDelta::AddNode { features } => {
                let id = self.graph.try_add_node(features)?;
                self.dirty_nodes.insert(id);
                Some(id)
            }
            GraphDelta::AddEdge { u, v } => {
                if self.graph.try_add_edge(*u, *v)? {
                    self.dirty_edges.insert((*u.min(v), *u.max(v)));
                }
                None
            }
            GraphDelta::RemoveEdge { u, v } => {
                if self.graph.try_remove_edge(*u, *v)? {
                    self.dirty_edges.insert((*u.min(v), *u.max(v)));
                }
                None
            }
            GraphDelta::SetFeatures { node, features } => {
                self.graph.try_set_node_features(*node, features)?;
                self.dirty_nodes.insert(*node);
                None
            }
        };
        self.deltas_applied += 1;
        Ok(new_node)
    }

    /// Applies a batch of deltas in order, stopping at the first invalid
    /// one (earlier deltas stay applied). The outcome always reports how
    /// many deltas were applied and the node ids assigned to successful
    /// `AddNode` deltas — **including on failure** — so a client can stay
    /// in sync with the server's graph state instead of silently
    /// desynchronizing after a partially applied batch.
    pub fn apply_deltas(&mut self, deltas: &[GraphDelta]) -> DeltaBatchOutcome {
        let mut outcome = DeltaBatchOutcome {
            applied: 0,
            new_nodes: Vec::new(),
            error: None,
        };
        for delta in deltas {
            match self.apply_delta(delta) {
                Ok(Some(id)) => outcome.new_nodes.push(id),
                Ok(None) => {}
                Err(e) => {
                    outcome.error = Some(e);
                    return outcome;
                }
            }
            outcome.applied += 1;
        }
        outcome
    }

    /// Scores the current working graph, reusing cached group embeddings
    /// for groups untouched by deltas since they were cached. Bit-identical
    /// to `self.model().score(self.graph())` by the dirty-region invariant
    /// (module docs); the dirty set resets on success.
    ///
    /// # Errors
    /// Whatever [`TrainedTpGrGad::score`] rejects.
    pub fn score(&mut self) -> Result<(TpGrGadResult, ScoreMode), GrgadError> {
        self.score_observed(&mut grgad_core::NullObserver)
    }

    /// [`ScoringEngine::score`] with a [`grgad_core::PipelineObserver`]
    /// receiving per-stage reports — the serving host's telemetry hook.
    /// Observation is read-only: results are bit-identical to
    /// [`ScoringEngine::score`] from the same engine state.
    pub fn score_observed(
        &mut self,
        observer: &mut dyn grgad_core::PipelineObserver,
    ) -> Result<(TpGrGadResult, ScoreMode), GrgadError> {
        let n = self.graph.num_nodes();
        let touched = self.touched_nodes();
        let dirty_fraction = if n == 0 {
            1.0
        } else {
            touched.len() as f32 / n as f32
        };
        let mode = if self.cache.is_empty() || dirty_fraction > self.config.max_dirty_fraction {
            self.cache.clear();
            ScoreMode::Full
        } else {
            let nodes: Vec<usize> = self.dirty_nodes.iter().copied().collect();
            self.cache.invalidate_nodes(&nodes);
            let edges: Vec<(usize, usize)> = self.dirty_edges.iter().copied().collect();
            self.cache.invalidate_edges(&edges);
            ScoreMode::Incremental
        };
        let result = self
            .model
            .score_cached_observed(&self.graph, &mut self.cache, observer)?;
        self.dirty_nodes.clear();
        self.dirty_edges.clear();
        match mode {
            ScoreMode::Incremental => self.scores_incremental += 1,
            ScoreMode::Full => self.scores_full += 1,
        }
        Ok((result, mode))
    }

    /// Scores caller-supplied raw node-id lists on the working graph.
    /// Each list is validated and canonicalized (sorted, **deduplicated**,
    /// in-range, non-empty) through `Group::try_new` before scoring, so a
    /// request repeating a node id scores the group once per occurrence of
    /// the *group*, never double-counting the repeated member.
    pub fn score_groups(&self, raw_groups: &[Vec<usize>]) -> Result<Vec<f32>, GrgadError> {
        let groups = raw_groups
            .iter()
            .map(|ids| Group::try_new(ids.iter().copied(), self.graph.num_nodes()))
            .collect::<Result<Vec<_>, _>>()?;
        self.model.score_groups(&self.graph, &groups)
    }

    /// Deterministic engine counters (the `stats` op).
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            nodes: self.graph.num_nodes(),
            edges: self.graph.num_edges(),
            feature_dim: self.graph.feature_dim(),
            dirty_nodes: self.dirty_nodes(),
            deltas_applied: self.deltas_applied,
            scores_incremental: self.scores_incremental,
            scores_full: self.scores_full,
            cache_entries: self.cache.len(),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grgad_core::{TpGrGad, TpGrGadConfig};
    use grgad_datasets::example;

    fn trained_pair(seed: u64) -> (TrainedTpGrGad, Graph) {
        let dataset = example::generate(40, seed);
        let model = TpGrGad::new(TpGrGadConfig::fast().with_seed(seed))
            .fit(&dataset.graph)
            .expect("fit");
        (model, dataset.graph)
    }

    #[test]
    fn engine_scores_match_full_rescoring_after_deltas() {
        let (model, graph) = trained_pair(3);
        let mut engine = ScoringEngine::new(model, graph).expect("engine");
        let (first, mode) = engine.score().expect("first score");
        assert_eq!(mode, ScoreMode::Full);
        assert!(!first.scores.is_empty());

        // Mutate a corner of the graph, then check incremental == full.
        let deltas = [
            GraphDelta::AddEdge { u: 0, v: 5 },
            GraphDelta::SetFeatures {
                node: 2,
                features: vec![0.5; engine.graph().feature_dim()],
            },
            GraphDelta::RemoveEdge { u: 0, v: 5 },
        ];
        for delta in &deltas {
            engine.apply_delta(delta).expect("delta");
        }
        assert!(engine.dirty_nodes() > 0);
        let (incremental, mode) = engine.score().expect("incremental score");
        assert_eq!(mode, ScoreMode::Incremental);
        let full = engine
            .model()
            .score(&engine.graph().clone())
            .expect("full score");
        assert_eq!(incremental.scores, full.scores);
        assert_eq!(incremental.candidate_groups, full.candidate_groups);
        assert_eq!(incremental.predicted_anomalous, full.predicted_anomalous);
        assert_eq!(engine.dirty_nodes(), 0, "dirty set resets after scoring");
    }

    #[test]
    fn dirty_fraction_fallback_goes_full() {
        let (model, graph) = trained_pair(4);
        let dim = graph.feature_dim();
        let mut engine = ScoringEngine::with_config(
            model,
            graph,
            EngineConfig {
                max_dirty_fraction: 0.05,
            },
        )
        .expect("engine");
        let _ = engine.score().expect("warm-up");
        // Dirty well past 5% of nodes.
        let n = engine.graph().num_nodes();
        for node in 0..n / 2 {
            engine
                .apply_delta(&GraphDelta::SetFeatures {
                    node,
                    features: vec![0.25; dim],
                })
                .expect("delta");
        }
        let (result, mode) = engine.score().expect("score");
        assert_eq!(mode, ScoreMode::Full);
        let full = engine.model().score(engine.graph()).expect("full");
        assert_eq!(result.scores, full.scores);
    }

    #[test]
    fn invalid_deltas_are_rejected_and_leave_graph_untouched() {
        let (model, graph) = trained_pair(5);
        let dim = graph.feature_dim();
        let edges_before = graph.num_edges();
        let mut engine = ScoringEngine::new(model, graph).expect("engine");
        let n = engine.graph().num_nodes();

        assert!(matches!(
            engine
                .apply_delta(&GraphDelta::AddEdge { u: 0, v: n + 7 })
                .unwrap_err(),
            GrgadError::InvalidNodeId { .. }
        ));
        assert!(matches!(
            engine
                .apply_delta(&GraphDelta::SetFeatures {
                    node: 0,
                    features: vec![0.0; dim + 1],
                })
                .unwrap_err(),
            GrgadError::ShapeMismatch { .. }
        ));
        assert!(matches!(
            engine
                .apply_delta(&GraphDelta::AddNode {
                    features: vec![f32::NAN; dim],
                })
                .unwrap_err(),
            GrgadError::NonFiniteInput { .. }
        ));
        assert_eq!(engine.graph().num_edges(), edges_before);
        assert_eq!(engine.graph().num_nodes(), n);
        assert_eq!(engine.dirty_nodes(), 0);
    }

    #[test]
    fn add_node_reports_assigned_ids_and_batches_stop_at_first_error() {
        let (model, graph) = trained_pair(6);
        let dim = graph.feature_dim();
        let n = graph.num_nodes();
        let mut engine = ScoringEngine::new(model, graph).expect("engine");

        let outcome = engine.apply_deltas(&[
            GraphDelta::AddNode {
                features: vec![0.1; dim],
            },
            GraphDelta::AddEdge { u: 0, v: n },
        ]);
        assert_eq!(outcome.error, None);
        assert_eq!((outcome.applied, outcome.new_nodes), (2, vec![n]));
        assert!(engine.graph().has_edge(0, n));

        // A batch failing part-way still reports how far it got and the
        // node ids it assigned — the client's only way to stay in sync
        // with the partially mutated working graph.
        let outcome = engine.apply_deltas(&[
            GraphDelta::AddNode {
                features: vec![0.2; dim],
            },
            GraphDelta::AddEdge { u: 1, v: 2 },
            GraphDelta::AddEdge { u: 0, v: 99_999 },
        ]);
        assert!(matches!(
            outcome.error,
            Some(GrgadError::InvalidNodeId { .. })
        ));
        assert_eq!(outcome.applied, 2, "two deltas landed before the error");
        assert_eq!(outcome.new_nodes, vec![n + 1], "assigned id reported");
        assert!(engine.graph().has_edge(1, 2));
        assert_eq!(engine.graph().num_nodes(), n + 2);
    }

    #[test]
    fn observed_scoring_is_bit_identical_and_reports_stages() {
        // trained_pair is deterministic, so two calls with one seed give
        // identical engines (TrainedTpGrGad is deliberately not Clone).
        let (model_a, graph_a) = trained_pair(9);
        let (model_b, graph_b) = trained_pair(9);
        let mut plain = ScoringEngine::new(model_a, graph_a).expect("engine");
        let mut observed = ScoringEngine::new(model_b, graph_b).expect("engine");

        let mut timings = grgad_core::TimingObserver::new();
        let (a, mode_a) = plain.score().expect("plain score");
        let (b, mode_b) = observed.score_observed(&mut timings).expect("observed");
        assert_eq!(mode_a, mode_b);
        assert_eq!(a.scores, b.scores, "observer must not perturb scores");
        assert_eq!(a.candidate_groups, b.candidate_groups);
        assert!(!timings.stages.is_empty(), "stages were reported");
        assert!(
            timings.stages.iter().all(|s| s.train_epochs == 0),
            "serving never trains"
        );

        // Incremental path reports stages too, and stays bit-identical.
        let dim = observed.graph().feature_dim();
        for engine in [&mut plain, &mut observed] {
            engine
                .apply_delta(&GraphDelta::SetFeatures {
                    node: 1,
                    features: vec![0.75; dim],
                })
                .expect("delta");
        }
        let before = timings.stages.len();
        let (a, mode_a) = plain.score().expect("plain rescore");
        let (b, mode_b) = observed.score_observed(&mut timings).expect("observed");
        assert_eq!(
            (mode_a, mode_b),
            (ScoreMode::Incremental, ScoreMode::Incremental)
        );
        assert_eq!(a.scores, b.scores);
        assert!(timings.stages.len() > before);
    }

    #[test]
    fn score_groups_dedups_raw_ids_at_the_boundary() {
        let (model, graph) = trained_pair(7);
        let engine = ScoringEngine::new(model, graph).expect("engine");
        let scores = engine
            .score_groups(&[vec![0, 1, 2], vec![2, 1, 0, 1, 2, 2]])
            .expect("scores");
        assert_eq!(scores[0], scores[1], "duplicate ids must be deduped");
        assert!(matches!(
            engine.score_groups(&[vec![999_999]]).unwrap_err(),
            GrgadError::InvalidNodeId { .. }
        ));
        assert!(matches!(
            engine.score_groups(&[vec![]]).unwrap_err(),
            GrgadError::EmptyGroup { .. }
        ));
    }

    #[test]
    fn stats_track_counters_deterministically() {
        let (model, graph) = trained_pair(8);
        let mut engine = ScoringEngine::new(model, graph).expect("engine");
        let before = engine.stats();
        assert_eq!(before.deltas_applied, 0);
        assert_eq!(before.scores_full + before.scores_incremental, 0);

        let _ = engine.score().expect("score");
        engine
            .apply_delta(&GraphDelta::AddEdge { u: 0, v: 1 })
            .expect("delta");
        let _ = engine.score().expect("score");
        let stats = engine.stats();
        assert_eq!(stats.deltas_applied, 1);
        assert_eq!(stats.scores_full, 1);
        assert_eq!(stats.scores_incremental, 1);
        assert!(stats.cache_entries > 0);
        assert!(stats.cache_hits > 0, "{stats:?}");

        let json = serde_json::to_string(&stats).expect("stats serialize");
        let back: EngineStats = serde_json::from_str(&json).expect("stats parse");
        assert_eq!(back, stats);
    }
}
