//! The NDJSON wire protocol of `grgad_serve`.
//!
//! One request per line on stdin, one response per line on stdout. The
//! core operations (plus a direct group-scoring op for callers that manage
//! their own candidates, and two ops over the persistent incremental
//! state):
//!
//! ```text
//! {"op":"load","model":"model.json","graph":"graph.json"}
//! {"op":"apply_delta","deltas":[{"kind":"add_edge","u":1,"v":2}]}
//! {"op":"score","top":3}
//! {"op":"score_groups","groups":[[0,1,2],[4,5]]}
//! {"op":"stats"}
//! {"op":"state_save","path":"state.json"}
//! {"op":"state_invalidate"}
//! ```
//!
//! Responses always carry `"ok"` and echo `"op"`; failures add an
//! `"error"` object with the [`GrgadError::kind`] tag and display message:
//!
//! ```text
//! {"ok":true,"op":"score","mode":"incremental","candidates":400,...}
//! {"ok":false,"op":"apply_delta","error":{"kind":"invalid_node_id","message":"..."}}
//! ```
//!
//! Everything is hand-mapped onto the `serde` value tree because the
//! vendored serde derive covers named-field structs only — enums
//! ([`GraphDelta`], [`RequestOp`]) are tagged maps by hand, exactly like
//! `DetectorKind` in `grgad-core`.

use grgad_error::GrgadError;
use serde::{Deserialize, Serialize, Value};

use crate::engine::{EngineStats, ScoreMode};

/// One mutation of the serving engine's working graph. Replaying a delta
/// stream is equivalent to rebuilding the final graph from scratch (the
/// `Graph` mutation invariants), which is what the incremental-vs-full
/// parity guarantee rests on.
#[derive(Clone, Debug, PartialEq)]
pub enum GraphDelta {
    /// Appends a node with the given feature row; the engine reports the
    /// assigned id (always the current node count).
    AddNode {
        /// Feature row; must match the graph's feature dimension.
        features: Vec<f32>,
    },
    /// Inserts the undirected edge `(u, v)`; duplicates and self-loops are
    /// no-ops, as in `Graph::add_edge`.
    AddEdge {
        /// First endpoint.
        u: usize,
        /// Second endpoint.
        v: usize,
    },
    /// Removes the undirected edge `(u, v)`; removing an absent edge is a
    /// no-op.
    RemoveEdge {
        /// First endpoint.
        u: usize,
        /// Second endpoint.
        v: usize,
    },
    /// Replaces one node's feature row.
    SetFeatures {
        /// The node to re-feature.
        node: usize,
        /// New feature row; must match the graph's feature dimension.
        features: Vec<f32>,
    },
}

impl Serialize for GraphDelta {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = Vec::new();
        let kind = match self {
            GraphDelta::AddNode { features } => {
                entries.push(("features".into(), features.to_value()));
                "add_node"
            }
            GraphDelta::AddEdge { u, v } => {
                entries.push(("u".into(), u.to_value()));
                entries.push(("v".into(), v.to_value()));
                "add_edge"
            }
            GraphDelta::RemoveEdge { u, v } => {
                entries.push(("u".into(), u.to_value()));
                entries.push(("v".into(), v.to_value()));
                "remove_edge"
            }
            GraphDelta::SetFeatures { node, features } => {
                entries.push(("node".into(), node.to_value()));
                entries.push(("features".into(), features.to_value()));
                "set_features"
            }
        };
        entries.insert(0, ("kind".into(), Value::Str(kind.into())));
        Value::Map(entries)
    }
}

impl Deserialize for GraphDelta {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        let kind = String::from_value(value.field("kind")?)?;
        match kind.as_str() {
            "add_node" => Ok(GraphDelta::AddNode {
                features: Vec::<f32>::from_value(value.field("features")?)?,
            }),
            "add_edge" => Ok(GraphDelta::AddEdge {
                u: usize::from_value(value.field("u")?)?,
                v: usize::from_value(value.field("v")?)?,
            }),
            "remove_edge" => Ok(GraphDelta::RemoveEdge {
                u: usize::from_value(value.field("u")?)?,
                v: usize::from_value(value.field("v")?)?,
            }),
            "set_features" => Ok(GraphDelta::SetFeatures {
                node: usize::from_value(value.field("node")?)?,
                features: Vec::<f32>::from_value(value.field("features")?)?,
            }),
            other => Err(serde::Error::custom(format!(
                "unknown delta kind `{other}` (expected add_node|add_edge|remove_edge|set_features)"
            ))),
        }
    }
}

/// A parsed request line: the typed envelope the engine consumes.
#[derive(Clone, Debug, PartialEq)]
pub struct ScoreRequest {
    /// The operation to perform.
    pub op: RequestOp,
}

/// The operations of the protocol.
#[derive(Clone, Debug, PartialEq)]
pub enum RequestOp {
    /// Load a trained model + initial graph (dataset JSON) from disk.
    Load {
        /// Path to a `TrainedTpGrGad::save` artifact.
        model: String,
        /// Path to a `grgad_datasets::io::save_json` dataset file.
        graph: String,
    },
    /// Apply a batch of graph deltas to the working graph.
    ApplyDelta {
        /// The mutations, applied in order; the batch stops at the first
        /// invalid delta (earlier ones stay applied, and the response
        /// reports the error).
        deltas: Vec<GraphDelta>,
    },
    /// Re-score the working graph (incrementally where possible).
    Score {
        /// How many top-scoring groups to include in the response.
        top: usize,
    },
    /// Score caller-supplied groups (raw node-id lists; duplicates are
    /// deduplicated at the boundary) on the working graph.
    ScoreGroups {
        /// One node-id list per group.
        groups: Vec<Vec<usize>>,
    },
    /// Report engine counters.
    Stats,
    /// Persist the engine's incremental state (all cache levels, pending
    /// dirt, counters) as JSON at the given path.
    StateSave {
        /// Destination path for the state snapshot.
        path: String,
    },
    /// Drop every cached level of the incremental state; the next score
    /// recomputes from scratch (and refills the caches).
    StateInvalidate,
}

impl RequestOp {
    /// The wire name of the operation (echoed in responses).
    pub fn name(&self) -> &'static str {
        match self {
            RequestOp::Load { .. } => "load",
            RequestOp::ApplyDelta { .. } => "apply_delta",
            RequestOp::Score { .. } => "score",
            RequestOp::ScoreGroups { .. } => "score_groups",
            RequestOp::Stats => "stats",
            RequestOp::StateSave { .. } => "state_save",
            RequestOp::StateInvalidate => "state_invalidate",
        }
    }
}

fn opt_field<'v>(value: &'v Value, key: &str) -> Option<&'v Value> {
    value
        .as_map()
        .and_then(|entries| entries.iter().find(|(k, _)| k == key))
        .map(|(_, v)| v)
}

/// Upper bound on one request line/frame payload, in bytes (16 MiB).
///
/// Shared by every transport that carries the NDJSON protocol: the stdin
/// binary enforces it per line, the socket host enforces it per frame
/// *before* allocating the payload buffer. Large enough for bulk
/// `apply_delta` batches (a 16 MiB line holds ~200k edge deltas), small
/// enough that a malicious or corrupted length prefix cannot make the
/// server allocate unbounded memory.
pub const MAX_REQUEST_BYTES: usize = 16 * 1024 * 1024;

/// Parses one request payload as raw bytes: the boundary every transport
/// funnels through. Rejects — with a typed [`GrgadError::Protocol`], never
/// by dropping the input silently — payloads that are empty, oversized
/// (> [`MAX_REQUEST_BYTES`]) or not valid UTF-8, then parses the text via
/// [`parse_request`].
///
/// # Errors
/// [`GrgadError::Protocol`] as above, plus everything [`parse_request`]
/// rejects.
pub fn parse_request_bytes(payload: &[u8]) -> Result<ScoreRequest, GrgadError> {
    parse_request(payload_str(payload)?)
}

/// Validates a raw request payload (non-empty, within
/// [`MAX_REQUEST_BYTES`], valid UTF-8) and returns it as text. The shared
/// boundary check for every byte-oriented transport — the stdin binary, the
/// socket host's frames.
///
/// # Errors
/// [`GrgadError::Protocol`] for an empty, oversized or non-UTF-8 payload.
pub fn payload_str(payload: &[u8]) -> Result<&str, GrgadError> {
    if payload.is_empty() {
        return Err(GrgadError::protocol("empty request (zero-length payload)"));
    }
    if payload.len() > MAX_REQUEST_BYTES {
        return Err(GrgadError::protocol(format!(
            "request of {} bytes exceeds the {MAX_REQUEST_BYTES}-byte limit",
            payload.len()
        )));
    }
    std::str::from_utf8(payload)
        .map_err(|e| GrgadError::protocol(format!("request is not valid UTF-8: {e}")))
}

/// Parses one NDJSON request line into a typed [`ScoreRequest`].
///
/// # Errors
/// [`GrgadError::Protocol`] for an oversized line (> [`MAX_REQUEST_BYTES`]),
/// malformed JSON, a missing/unknown `op` or missing operation fields.
pub fn parse_request(line: &str) -> Result<ScoreRequest, GrgadError> {
    if line.len() > MAX_REQUEST_BYTES {
        return Err(GrgadError::protocol(format!(
            "request of {} bytes exceeds the {MAX_REQUEST_BYTES}-byte limit",
            line.len()
        )));
    }
    let value: Value =
        serde_json::from_str(line).map_err(|e| GrgadError::protocol(format!("bad JSON: {e}")))?;
    let op_name = opt_field(&value, "op")
        .ok_or_else(|| GrgadError::protocol("missing `op` field"))
        .and_then(|v| {
            String::from_value(v).map_err(|_| GrgadError::protocol("`op` must be a string"))
        })?;
    let proto = |e: serde::Error| GrgadError::protocol(format!("op `{op_name}`: {e}"));
    let op = match op_name.as_str() {
        "load" => RequestOp::Load {
            model: String::from_value(value.field("model").map_err(proto)?).map_err(proto)?,
            graph: String::from_value(value.field("graph").map_err(proto)?).map_err(proto)?,
        },
        "apply_delta" => RequestOp::ApplyDelta {
            deltas: Vec::<GraphDelta>::from_value(value.field("deltas").map_err(proto)?)
                .map_err(proto)?,
        },
        "score" => RequestOp::Score {
            top: match opt_field(&value, "top") {
                Some(v) => usize::from_value(v).map_err(proto)?,
                None => DEFAULT_TOP,
            },
        },
        "score_groups" => RequestOp::ScoreGroups {
            groups: Vec::<Vec<usize>>::from_value(value.field("groups").map_err(proto)?)
                .map_err(proto)?,
        },
        "stats" => RequestOp::Stats,
        "state_save" => RequestOp::StateSave {
            path: String::from_value(value.field("path").map_err(proto)?).map_err(proto)?,
        },
        "state_invalidate" => RequestOp::StateInvalidate,
        other => {
            return Err(GrgadError::protocol(format!(
                "unknown op `{other}` (expected load|apply_delta|score|score_groups|stats|\
                 state_save|state_invalidate)"
            )))
        }
    };
    Ok(ScoreRequest { op })
}

/// Default `top` count for `score` responses.
pub const DEFAULT_TOP: usize = 5;

/// A top-scoring group in a `score` response.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TopGroup {
    /// The group's node ids.
    pub nodes: Vec<usize>,
    /// Its anomaly score.
    pub score: f32,
}

/// The success payload of a response.
#[derive(Clone, Debug, PartialEq)]
pub enum ResponseBody {
    /// `load` succeeded.
    Loaded {
        /// Nodes in the loaded working graph.
        nodes: usize,
        /// Edges in the loaded working graph.
        edges: usize,
        /// Feature dimensionality.
        feature_dim: usize,
    },
    /// `apply_delta` succeeded.
    Applied {
        /// Deltas applied from this batch.
        applied: usize,
        /// Node ids assigned to `add_node` deltas in this batch, in order.
        new_nodes: Vec<usize>,
        /// Current dirty-node count (since the last score).
        dirty_nodes: usize,
    },
    /// `score` succeeded.
    Scored {
        /// Whether the run reused cached embeddings.
        mode: ScoreMode,
        /// Candidate groups scored.
        candidates: usize,
        /// Groups flagged anomalous.
        anomalous: usize,
        /// The top-scoring groups, descending.
        top: Vec<TopGroup>,
    },
    /// `score_groups` succeeded.
    GroupScores {
        /// One score per input group, in input order.
        scores: Vec<f32>,
    },
    /// `stats` succeeded.
    Stats(EngineStats),
    /// `state_save` succeeded.
    StateSaved {
        /// The path the state was written to (echoed from the request).
        path: String,
    },
    /// `state_invalidate` succeeded.
    StateInvalidated {
        /// Dirty-node count still pending (dirt survives invalidation).
        dirty_nodes: usize,
    },
}

/// One NDJSON response line, typed.
#[derive(Clone, Debug, PartialEq)]
pub struct ScoreResponse {
    /// The request op this responds to (`"?"` when the line did not parse
    /// far enough to tell).
    pub op: String,
    /// The outcome.
    pub result: Result<ResponseBody, GrgadError>,
    /// Partial progress of a *failed* `apply_delta` batch: `(applied,
    /// new_node_ids)`. Earlier deltas stay applied when a batch stops at
    /// an invalid one, so the error response must still tell the client
    /// how far the server got — otherwise the client's view of the node
    /// count silently desynchronizes from the working graph.
    pub partial: Option<(usize, Vec<usize>)>,
}

impl ScoreResponse {
    /// A success response.
    pub fn ok(op: &str, body: ResponseBody) -> Self {
        Self {
            op: op.to_string(),
            result: Ok(body),
            partial: None,
        }
    }

    /// A failure response.
    pub fn err(op: &str, error: GrgadError) -> Self {
        Self {
            op: op.to_string(),
            result: Err(error),
            partial: None,
        }
    }

    /// A failure response for a partially applied `apply_delta` batch.
    pub fn err_partial(op: &str, error: GrgadError, applied: usize, new_nodes: Vec<usize>) -> Self {
        Self {
            op: op.to_string(),
            result: Err(error),
            partial: Some((applied, new_nodes)),
        }
    }

    /// Renders the response as one compact JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut entries: Vec<(String, Value)> = vec![
            ("ok".into(), Value::Bool(self.result.is_ok())),
            ("op".into(), Value::Str(self.op.clone())),
        ];
        match &self.result {
            Ok(body) => match body {
                ResponseBody::Loaded {
                    nodes,
                    edges,
                    feature_dim,
                } => {
                    entries.push(("nodes".into(), nodes.to_value()));
                    entries.push(("edges".into(), edges.to_value()));
                    entries.push(("feature_dim".into(), feature_dim.to_value()));
                }
                ResponseBody::Applied {
                    applied,
                    new_nodes,
                    dirty_nodes,
                } => {
                    entries.push(("applied".into(), applied.to_value()));
                    entries.push(("new_nodes".into(), new_nodes.to_value()));
                    entries.push(("dirty_nodes".into(), dirty_nodes.to_value()));
                }
                ResponseBody::Scored {
                    mode,
                    candidates,
                    anomalous,
                    top,
                } => {
                    entries.push(("mode".into(), Value::Str(mode.name().into())));
                    entries.push(("candidates".into(), candidates.to_value()));
                    entries.push(("anomalous".into(), anomalous.to_value()));
                    entries.push(("top".into(), top.to_value()));
                }
                ResponseBody::GroupScores { scores } => {
                    entries.push(("scores".into(), scores.to_value()));
                }
                ResponseBody::Stats(stats) => {
                    entries.push(("stats".into(), stats.to_value()));
                }
                ResponseBody::StateSaved { path } => {
                    entries.push(("path".into(), Value::Str(path.clone())));
                }
                ResponseBody::StateInvalidated { dirty_nodes } => {
                    entries.push(("dirty_nodes".into(), dirty_nodes.to_value()));
                }
            },
            Err(error) => {
                if let Some((applied, new_nodes)) = &self.partial {
                    entries.push(("applied".into(), applied.to_value()));
                    entries.push(("new_nodes".into(), new_nodes.to_value()));
                }
                entries.push((
                    "error".into(),
                    Value::Map(vec![
                        ("kind".into(), Value::Str(error.kind().into())),
                        ("message".into(), Value::Str(error.to_string())),
                    ]),
                ));
            }
        }
        serde_json::to_string(&Value::Map(entries)).unwrap_or_else(|_| {
            // The value tree above contains no non-finite floats (scores are
            // checked finite upstream), so rendering cannot fail; keep a
            // structured fallback rather than panicking in the server loop.
            "{\"ok\":false,\"op\":\"?\",\"error\":{\"kind\":\"protocol\",\"message\":\"render failure\"}}".to_string()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_delta_round_trips_through_json() {
        let deltas = vec![
            GraphDelta::AddNode {
                features: vec![1.0, -2.5],
            },
            GraphDelta::AddEdge { u: 3, v: 9 },
            GraphDelta::RemoveEdge { u: 9, v: 3 },
            GraphDelta::SetFeatures {
                node: 4,
                features: vec![0.5],
            },
        ];
        let json = serde_json::to_string(&deltas).unwrap();
        let back: Vec<GraphDelta> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, deltas);
    }

    #[test]
    fn parses_every_op() {
        let req = parse_request(r#"{"op":"load","model":"m.json","graph":"g.json"}"#).unwrap();
        assert_eq!(req.op.name(), "load");

        let req =
            parse_request(r#"{"op":"apply_delta","deltas":[{"kind":"add_edge","u":0,"v":1}]}"#)
                .unwrap();
        assert_eq!(
            req.op,
            RequestOp::ApplyDelta {
                deltas: vec![GraphDelta::AddEdge { u: 0, v: 1 }]
            }
        );

        assert_eq!(
            parse_request(r#"{"op":"score"}"#).unwrap().op,
            RequestOp::Score { top: DEFAULT_TOP }
        );
        assert_eq!(
            parse_request(r#"{"op":"score","top":2}"#).unwrap().op,
            RequestOp::Score { top: 2 }
        );
        assert_eq!(
            parse_request(r#"{"op":"score_groups","groups":[[1,2],[3]]}"#)
                .unwrap()
                .op,
            RequestOp::ScoreGroups {
                groups: vec![vec![1, 2], vec![3]]
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"stats"}"#).unwrap().op,
            RequestOp::Stats
        );
        assert_eq!(
            parse_request(r#"{"op":"state_save","path":"s.json"}"#)
                .unwrap()
                .op,
            RequestOp::StateSave {
                path: "s.json".to_string()
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"state_invalidate"}"#).unwrap().op,
            RequestOp::StateInvalidate
        );
    }

    #[test]
    fn malformed_requests_are_protocol_errors() {
        for line in [
            "not json at all",
            r#"{"no_op":true}"#,
            r#"{"op":"frobnicate"}"#,
            r#"{"op":"load","model":"m.json"}"#,
            r#"{"op":"apply_delta","deltas":[{"kind":"warp","u":0}]}"#,
            r#"{"op":42}"#,
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(
                matches!(err, GrgadError::Protocol { .. }),
                "{line} -> {err:?}"
            );
        }
    }

    #[test]
    fn malformed_payload_bytes_are_typed_protocol_errors() {
        // Table: (payload bytes, substring the error message must contain).
        // Covers the transport-boundary failure modes that used to be
        // dropped or could kill the stdin loop: empty frames, frames larger
        // than the limit, non-UTF-8 bytes, truncated NDJSON and unknown
        // methods all surface as GrgadError::Protocol with a diagnostic.
        let oversized = vec![b'x'; MAX_REQUEST_BYTES + 1];
        let cases: Vec<(&[u8], &str)> = vec![
            (b"", "empty request"),
            (&oversized, "exceeds"),
            (&[0xff, 0xfe, b'{', b'}'], "not valid UTF-8"),
            (br#"{"op":"score""#, "bad JSON"),
            (br#"{"op":"frobnicate"}"#, "unknown op"),
        ];
        for (payload, needle) in cases {
            let err = parse_request_bytes(payload).unwrap_err();
            assert!(
                matches!(err, GrgadError::Protocol { .. }),
                "{payload:?} -> {err:?}"
            );
            let text = err.to_string();
            assert!(text.contains(needle), "{text:?} should contain {needle:?}");
        }
    }

    #[test]
    fn payload_bytes_at_the_limit_still_parse() {
        // A request padded with trailing spaces up to exactly
        // MAX_REQUEST_BYTES must parse: the limit is inclusive.
        let mut payload = br#"{"op":"stats"}"#.to_vec();
        payload.resize(MAX_REQUEST_BYTES, b' ');
        let req = parse_request_bytes(&payload).unwrap();
        assert_eq!(req.op, RequestOp::Stats);
    }

    #[test]
    fn responses_render_ok_and_error_shapes() {
        let ok = ScoreResponse::ok(
            "load",
            ResponseBody::Loaded {
                nodes: 10,
                edges: 20,
                feature_dim: 4,
            },
        )
        .to_json_line();
        assert!(
            ok.contains("\"ok\":true") && ok.contains("\"nodes\":10"),
            "{ok}"
        );

        let err = ScoreResponse::err("score", GrgadError::empty_graph("score")).to_json_line();
        assert!(
            err.contains("\"ok\":false") && err.contains("\"kind\":\"empty_graph\""),
            "{err}"
        );
    }
}
