//! Quick probe of t-SNE separation for parameter tuning (not part of the
//! public examples; see the workspace-level examples instead).

use grgad_linalg::Matrix;
use grgad_tsne::{tsne, TsneConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let per_class = 15;
    let mut rng = StdRng::seed_from_u64(3);
    let mut data = Matrix::zeros(2 * per_class, 10);
    for i in 0..2 * per_class {
        let is_second = i >= per_class;
        for j in 0..10 {
            let center = if is_second { 6.0 } else { 0.0 };
            data[(i, j)] = center + Matrix::rand_normal(1, 1, 0.3, &mut rng)[(0, 0)];
        }
    }
    for (lr, iters, perp) in [
        (100.0, 250, 10.0),
        (50.0, 400, 10.0),
        (10.0, 500, 5.0),
        (200.0, 500, 10.0),
    ] {
        let y = tsne(
            &data,
            &TsneConfig {
                learning_rate: lr,
                iterations: iters,
                perplexity: perp,
                seed: 1,
                ..Default::default()
            },
        );
        let centroid = |lo: usize, hi: usize| -> (f32, f32) {
            let n = (hi - lo) as f32;
            (
                (lo..hi).map(|i| y[(i, 0)]).sum::<f32>() / n,
                (lo..hi).map(|i| y[(i, 1)]).sum::<f32>() / n,
            )
        };
        let c0 = centroid(0, per_class);
        let c1 = centroid(per_class, 2 * per_class);
        let between = ((c0.0 - c1.0).powi(2) + (c0.1 - c1.1).powi(2)).sqrt();
        let spread = |lo: usize, hi: usize, c: (f32, f32)| -> f32 {
            (lo..hi)
                .map(|i| ((y[(i, 0)] - c.0).powi(2) + (y[(i, 1)] - c.1).powi(2)).sqrt())
                .sum::<f32>()
                / (hi - lo) as f32
        };
        let within = (spread(0, per_class, c0) + spread(per_class, 2 * per_class, c1)) / 2.0;
        println!("lr={lr} iters={iters} perp={perp}: between={between:.3} within={within:.3} ratio={:.2}", between / within);
    }
}
