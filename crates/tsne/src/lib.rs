//! Exact t-SNE (van der Maaten & Hinton, 2008) for visualizing TPGCL group
//! embeddings (Fig. 7 of the paper).
//!
//! The implementation is the classical exact algorithm: per-point
//! perplexity-calibrated Gaussian affinities in the high-dimensional space,
//! Student-t affinities in the low-dimensional map, and gradient descent with
//! momentum and early exaggeration. The candidate-group sets in the
//! experiments contain at most a few hundred points, so the O(n²) cost is
//! negligible.

// The serving contract extends workspace-wide: no `unwrap()` outside
// test code — fallible paths return `Result<_, GrgadError>` or justify
// themselves with `expect` + a `grgad-lint` suppression where truly
// infallible. Enforced per-crate so the vendored shims stay untouched.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
use grgad_linalg::ops::pairwise_squared_distances;
use grgad_linalg::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// t-SNE hyperparameters.
#[derive(Clone, Debug)]
pub struct TsneConfig {
    /// Output dimensionality (2 for the paper's scatter plots).
    pub output_dims: usize,
    /// Perplexity of the Gaussian kernels (effective neighborhood size).
    pub perplexity: f32,
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// Early-exaggeration factor applied for the first quarter of iterations.
    pub early_exaggeration: f32,
    /// RNG seed for the initial map.
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        Self {
            output_dims: 2,
            perplexity: 15.0,
            iterations: 400,
            learning_rate: 50.0,
            momentum: 0.8,
            early_exaggeration: 4.0,
            seed: 0,
        }
    }
}

/// Embeds the rows of `data` into a low-dimensional map.
///
/// Returns an `n × output_dims` matrix. Degenerate inputs (fewer than 3 rows)
/// are returned as small random maps.
pub fn tsne(data: &Matrix, config: &TsneConfig) -> Matrix {
    let n = data.rows();
    let mut rng = StdRng::seed_from_u64(config.seed);
    if n < 3 {
        return Matrix::rand_normal(n, config.output_dims, 1e-2, &mut rng);
    }
    let p = joint_affinities(data, config.perplexity);
    let mut y = Matrix::rand_normal(n, config.output_dims, 1e-2, &mut rng);
    let mut velocity = Matrix::zeros(n, config.output_dims);
    let exaggeration_cutoff = config.iterations / 4;

    for iter in 0..config.iterations {
        let exaggeration = if iter < exaggeration_cutoff {
            config.early_exaggeration
        } else {
            1.0
        };
        let grad = gradient(&p, &y, exaggeration);
        velocity = velocity
            .scale(config.momentum)
            .sub(&grad.scale(config.learning_rate));
        y = y.add(&velocity);
    }
    // Center the map.
    let mean = y.mean_rows();
    for i in 0..n {
        for j in 0..config.output_dims {
            y[(i, j)] -= mean[(0, j)];
        }
    }
    y
}

/// Symmetrized, perplexity-calibrated joint probabilities `P`.
fn joint_affinities(data: &Matrix, perplexity: f32) -> Matrix {
    let n = data.rows();
    let d2 = pairwise_squared_distances(data);
    let target_entropy = perplexity.max(2.0).ln();
    let mut p = Matrix::zeros(n, n);

    for i in 0..n {
        // Binary search the precision beta_i so the conditional distribution
        // has the target entropy.
        let mut beta = 1.0_f32;
        let (mut beta_lo, mut beta_hi) = (0.0_f32, f32::INFINITY);
        let mut row = vec![0.0_f32; n];
        for _ in 0..50 {
            let mut sum = 0.0;
            for j in 0..n {
                row[j] = if i == j {
                    0.0
                } else {
                    (-beta * d2[(i, j)]).exp()
                };
                sum += row[j];
            }
            if sum <= 0.0 {
                break;
            }
            let mut entropy = 0.0;
            for &v in row.iter() {
                if v > 0.0 {
                    let q = v / sum;
                    entropy -= q * q.ln();
                }
            }
            let diff = entropy - target_entropy;
            if diff.abs() < 1e-4 {
                break;
            }
            if diff > 0.0 {
                beta_lo = beta;
                beta = if beta_hi.is_finite() {
                    (beta + beta_hi) / 2.0
                } else {
                    beta * 2.0
                };
            } else {
                beta_hi = beta;
                beta = (beta + beta_lo) / 2.0;
            }
        }
        let sum: f32 = row.iter().sum();
        if sum > 0.0 {
            for j in 0..n {
                p[(i, j)] = row[j] / sum;
            }
        }
    }
    // Symmetrize and normalize.
    let mut joint = Matrix::zeros(n, n);
    let scale = 1.0 / (2.0 * n as f32);
    for i in 0..n {
        for j in 0..n {
            joint[(i, j)] = ((p[(i, j)] + p[(j, i)]) * scale).max(1e-12);
        }
    }
    joint
}

/// The exact t-SNE gradient with Student-t low-dimensional affinities.
fn gradient(p: &Matrix, y: &Matrix, exaggeration: f32) -> Matrix {
    let n = y.rows();
    let dims = y.cols();
    // Student-t numerators and normalization.
    let d2 = pairwise_squared_distances(y);
    let mut num = Matrix::zeros(n, n);
    let mut z = 0.0_f32;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                let v = 1.0 / (1.0 + d2[(i, j)]);
                num[(i, j)] = v;
                z += v;
            }
        }
    }
    let z = z.max(1e-12);
    let mut grad = Matrix::zeros(n, dims);
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let q = (num[(i, j)] / z).max(1e-12);
            let mult = (exaggeration * p[(i, j)] - q) * num[(i, j)];
            for k in 0..dims {
                grad[(i, k)] += 4.0 * mult * (y[(i, k)] - y[(j, k)]);
            }
        }
    }
    grad
}

#[cfg(test)]
mod tests {
    use super::*;
    use grgad_linalg::ops::euclidean_distance;

    /// Two well-separated Gaussian blobs in 10-D.
    fn two_blobs(per_class: usize) -> (Matrix, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(3);
        let mut data = Matrix::zeros(2 * per_class, 10);
        let mut labels = Vec::new();
        for i in 0..2 * per_class {
            let is_second = i >= per_class;
            for j in 0..10 {
                let center = if is_second { 6.0 } else { 0.0 };
                data[(i, j)] = center + Matrix::rand_normal(1, 1, 0.3, &mut rng)[(0, 0)];
            }
            labels.push(is_second);
        }
        (data, labels)
    }

    #[test]
    fn output_shape_and_finiteness() {
        let (data, _) = two_blobs(15);
        let config = TsneConfig {
            iterations: 100,
            ..Default::default()
        };
        let y = tsne(&data, &config);
        assert_eq!(y.shape(), (30, 2));
        assert!(y.all_finite());
    }

    #[test]
    fn separated_clusters_stay_separated() {
        let (data, labels) = two_blobs(15);
        let config = TsneConfig {
            iterations: 400,
            perplexity: 10.0,
            seed: 1,
            ..Default::default()
        };
        let y = tsne(&data, &config);
        // Centroids of the two classes in the map.
        let centroid = |flag: bool| -> Vec<f32> {
            let rows: Vec<usize> = labels
                .iter()
                .enumerate()
                .filter(|(_, &l)| l == flag)
                .map(|(i, _)| i)
                .collect();
            let mut c = [0.0_f32; 2];
            for &r in &rows {
                c[0] += y[(r, 0)];
                c[1] += y[(r, 1)];
            }
            c.iter().map(|v| v / rows.len() as f32).collect()
        };
        let c0 = centroid(false);
        let c1 = centroid(true);
        let between = euclidean_distance(&c0, &c1);
        // Mean within-class spread.
        let spread = |flag: bool, c: &[f32]| -> f32 {
            let rows: Vec<usize> = labels
                .iter()
                .enumerate()
                .filter(|(_, &l)| l == flag)
                .map(|(i, _)| i)
                .collect();
            rows.iter()
                .map(|&r| euclidean_distance(&[y[(r, 0)], y[(r, 1)]], c))
                .sum::<f32>()
                / rows.len() as f32
        };
        let within = (spread(false, &c0) + spread(true, &c1)) / 2.0;
        assert!(
            between > within,
            "clusters should separate: between {between}, within {within}"
        );
    }

    #[test]
    fn map_is_centered() {
        let (data, _) = two_blobs(10);
        let y = tsne(
            &data,
            &TsneConfig {
                iterations: 50,
                ..Default::default()
            },
        );
        let mean = y.mean_rows();
        assert!(mean[(0, 0)].abs() < 1e-3);
        assert!(mean[(0, 1)].abs() < 1e-3);
    }

    #[test]
    fn tiny_inputs_do_not_crash() {
        let data = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let y = tsne(&data, &TsneConfig::default());
        assert_eq!(y.shape(), (2, 2));
        let empty = tsne(&Matrix::zeros(0, 2), &TsneConfig::default());
        assert_eq!(empty.rows(), 0);
    }

    #[test]
    fn affinities_are_symmetric_probabilities() {
        let (data, _) = two_blobs(8);
        let p = joint_affinities(&data, 5.0);
        let total: f32 = p.as_slice().iter().sum();
        assert!((total - 1.0).abs() < 0.05, "total probability {total}");
        for i in 0..p.rows() {
            for j in 0..p.cols() {
                assert!((p[(i, j)] - p[(j, i)]).abs() < 1e-6);
            }
        }
    }
}
