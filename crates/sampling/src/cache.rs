//! Memoized graph-search draws for incremental candidate re-sampling.
//!
//! # Why memoization gives bit-for-bit replay
//!
//! `sample_candidate_groups` consumes its seeded RNG only in the *outer*
//! loop — pair subsampling/shuffling and the background-root shuffle. The
//! graph searches themselves (shortest path, bounded BFS tree, bounded cycle
//! enumeration) are deterministic functions of `(graph, arguments)` and
//! never touch the RNG. So re-running the outer loop verbatim while
//! answering each search from a cache produces the exact byte sequence of a
//! fresh run, **provided every cache entry equals what a fresh search on the
//! current graph would return.**
//!
//! # The pruning invariant
//!
//! [`DrawCache::prune`] maintains that proviso inductively. Given the set of
//! *topology-dirty* nodes (endpoints of every edge added or removed since
//! the last prune — feature rewrites cannot change a graph search), it
//! computes each node's hop distance `d(x)` to the nearest dirty node and
//! retains an entry only when the search that produced it could not have
//! explored — nor can now reach — any dirty node:
//!
//! * `path(v→µ) = Some(p)`: kept iff `d(v) ≥ |p|`. The BFS from `v` that
//!   found `p` explored only nodes within `|p|−1` hops, all still clean, so
//!   it replays identically; and any *new* route through a changed edge
//!   passes a dirty node at ≥ `|p|` hops, hence is strictly longer.
//! * `path(v→µ) = None`: kept iff `d(v) = ∞`. "No path" was decided by
//!   exhausting `v`'s component; if no dirty node is in that component
//!   (in the current graph), the component — and the answer — is unchanged.
//!   An added edge that newly connects `v` to `µ` puts its dirty endpoints
//!   into `v`'s component, making `d(v)` finite.
//! * `tree(root)`: kept iff `d(root) ≥ tree_depth + 1` — the bounded BFS
//!   reads adjacency only within `tree_depth` hops.
//! * `cycles(v)`: kept iff `d(v) ≥ max_cycle_len + 1` — the bounded DFS
//!   walks simple paths of at most `max_cycle_len` nodes through `v`.
//!
//! Each rule is conservative (it may evict a still-valid entry, never keep a
//! stale one), so after every prune the invariant holds for the current
//! graph, and the memoized replay is bit-identical to a fresh
//! `sample_candidate_groups` call. The parity tests in `sampler.rs` pin
//! this across randomized delta rounds.

use std::collections::{BTreeMap, BTreeSet};

use grgad_graph::algorithms::multi_source_bfs_distances;
use grgad_graph::Graph;

use crate::sampler::SamplingConfig;

/// Cross-round cache of candidate-group search draws, keyed by search
/// arguments. Owned by the pipeline's `IncrementalState`; feed it to
/// `sample_candidate_groups_cached` and [`DrawCache::prune`] it after every
/// batch of graph deltas (or [`DrawCache::clear`] it on a full fallback).
#[derive(Clone, Debug, Default)]
pub struct DrawCache {
    /// `shortest_path(v, µ)` results, including negative ("no path") ones.
    paths: BTreeMap<(usize, usize), Option<Vec<usize>>>,
    /// `bounded_bfs_tree(root, tree_depth, max_group_size)` results.
    trees: BTreeMap<usize, Vec<usize>>,
    /// `cycles_through_budgeted(v, …)` results.
    cycles: BTreeMap<usize, Vec<Vec<usize>>>,
    hits: u64,
    misses: u64,
}

impl DrawCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of memoized draws (across all three search kinds).
    pub fn len(&self) -> usize {
        self.paths.len() + self.trees.len() + self.cycles.len()
    }

    /// True when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative draws answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cumulative draws that ran the underlying graph search.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Drops every memoized draw (counters are kept — they are lifetime
    /// statistics, not validity state).
    pub fn clear(&mut self) {
        self.paths.clear();
        self.trees.clear();
        self.cycles.clear();
    }

    /// Evicts every draw a topology change could have affected (module docs
    /// give the per-kind validity rules). `topology_dirty` must contain both
    /// endpoints of every edge added or removed since the previous prune;
    /// nodes whose *features* changed need not be included. Returns the
    /// number of evicted entries.
    pub fn prune(
        &mut self,
        graph: &Graph,
        topology_dirty: &BTreeSet<usize>,
        config: &SamplingConfig,
    ) -> usize {
        if topology_dirty.is_empty() {
            return 0;
        }
        let before = self.len();
        let n = graph.num_nodes();
        let dist = multi_source_bfs_distances(graph, topology_dirty.iter().copied());
        // Hop distance to the nearest topology-dirty node; `None` = ∞.
        let d = |v: usize| -> Option<usize> { dist.get(v).copied().flatten() };

        self.paths.retain(|&(v, _), draw| {
            if v >= n {
                return false;
            }
            match (draw.as_ref(), d(v)) {
                // A found path replays iff the BFS ball that produced it
                // (radius |p|−1) and every shorter route stay clean.
                (Some(p), Some(dv)) => dv >= p.len(),
                (Some(_), None) => true,
                // "No path" survives only while v's component has no dirty
                // node at all.
                (None, dv) => dv.is_none(),
            }
        });
        let tree_radius = config.tree_depth + 1;
        self.trees
            .retain(|&root, _| root < n && d(root).is_none_or(|dr| dr >= tree_radius));
        let cycle_radius = config.max_cycle_len + 1;
        self.cycles
            .retain(|&v, _| v < n && d(v).is_none_or(|dv| dv >= cycle_radius));
        before - self.len()
    }

    /// Cumulative hit/miss counters in one read (avoids two borrows at call
    /// sites that diff them around a sampling run).
    pub fn counters(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    pub(crate) fn path_entry(
        &mut self,
        key: (usize, usize),
        compute: impl FnOnce() -> Option<Vec<usize>>,
    ) -> Option<Vec<usize>> {
        match self.paths.entry(key) {
            std::collections::btree_map::Entry::Occupied(e) => {
                self.hits += 1;
                e.get().clone()
            }
            std::collections::btree_map::Entry::Vacant(e) => {
                self.misses += 1;
                e.insert(compute()).clone()
            }
        }
    }

    pub(crate) fn tree_entry(
        &mut self,
        root: usize,
        compute: impl FnOnce() -> Vec<usize>,
    ) -> Vec<usize> {
        match self.trees.entry(root) {
            std::collections::btree_map::Entry::Occupied(e) => {
                self.hits += 1;
                e.get().clone()
            }
            std::collections::btree_map::Entry::Vacant(e) => {
                self.misses += 1;
                e.insert(compute()).clone()
            }
        }
    }

    pub(crate) fn cycles_entry(
        &mut self,
        v: usize,
        compute: impl FnOnce() -> Vec<Vec<usize>>,
    ) -> Vec<Vec<usize>> {
        match self.cycles.entry(v) {
            std::collections::btree_map::Entry::Occupied(e) => {
                self.hits += 1;
                e.get().clone()
            }
            std::collections::btree_map::Entry::Vacant(e) => {
                self.misses += 1;
                e.insert(compute()).clone()
            }
        }
    }
}

/// Flattened pair-draw entries, as serialized (the map keys are tuples,
/// which the vendored serde cannot use as JSON object keys).
type PathEntries = Vec<((usize, usize), Option<Vec<usize>>)>;

// Hand serde: the vendored derive covers named-field structs of primitive
// fields only, and the draw maps are keyed by non-string types.
impl serde::Serialize for DrawCache {
    fn to_value(&self) -> serde::Value {
        let paths: PathEntries = self.paths.iter().map(|(&k, v)| (k, v.clone())).collect();
        let trees: Vec<(usize, Vec<usize>)> =
            self.trees.iter().map(|(&k, v)| (k, v.clone())).collect();
        let cycles: Vec<(usize, Vec<Vec<usize>>)> =
            self.cycles.iter().map(|(&k, v)| (k, v.clone())).collect();
        serde::Value::Map(vec![
            ("paths".to_string(), paths.to_value()),
            ("trees".to_string(), trees.to_value()),
            ("cycles".to_string(), cycles.to_value()),
            ("hits".to_string(), self.hits.to_value()),
            ("misses".to_string(), self.misses.to_value()),
        ])
    }
}

impl serde::Deserialize for DrawCache {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let paths = PathEntries::from_value(value.field("paths")?)?;
        let trees = Vec::<(usize, Vec<usize>)>::from_value(value.field("trees")?)?;
        let cycles = Vec::<(usize, Vec<Vec<usize>>)>::from_value(value.field("cycles")?)?;
        Ok(Self {
            paths: paths.into_iter().collect(),
            trees: trees.into_iter().collect(),
            cycles: cycles.into_iter().collect(),
            hits: u64::from_value(value.field("hits")?)?,
            misses: u64::from_value(value.field("misses")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_graph(n: usize) -> Graph {
        let mut g = Graph::with_no_features(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1);
        }
        g
    }

    #[test]
    fn prune_keeps_draws_far_from_the_dirty_region() {
        let g = line_graph(30);
        let config = SamplingConfig {
            tree_depth: 2,
            max_cycle_len: 4,
            ..Default::default()
        };
        let mut cache = DrawCache::new();
        // Seed some entries by computing through the memoizing accessors.
        let _ = cache.path_entry((0, 3), || Some(vec![0, 1, 2, 3]));
        let _ = cache.path_entry((29, 26), || Some(vec![29, 28, 27, 26]));
        let _ = cache.tree_entry(1, || vec![0, 1, 2, 3]);
        let _ = cache.tree_entry(28, || vec![26, 27, 28, 29]);
        let _ = cache.cycles_entry(0, Vec::new);
        let _ = cache.cycles_entry(29, Vec::new);
        assert_eq!(cache.len(), 6);
        assert_eq!(cache.misses(), 6);

        // Dirty the far end of the line: node 0's draws sit ≥ 26 hops away
        // and all survive; node 29's draws are inside every radius and go.
        let dirty: BTreeSet<usize> = [28, 29].into_iter().collect();
        let evicted = cache.prune(&g, &dirty, &config);
        assert_eq!(evicted, 3);
        assert_eq!(cache.path_entry((0, 3), || None), Some(vec![0, 1, 2, 3]));
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn negative_path_draws_survive_only_in_untouched_components() {
        // Two components: 0-1-2 and 3-4-5.
        let mut g = Graph::with_no_features(6);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(3, 4);
        g.add_edge(4, 5);
        let config = SamplingConfig::default();
        let mut cache = DrawCache::new();
        let _ = cache.path_entry((0, 5), || None);
        let _ = cache.path_entry((3, 0), || None);

        // A change inside 3..5 leaves 0's component untouched: the (0,5)
        // negative draw stays, the (3,0) one goes.
        let dirty: BTreeSet<usize> = [4, 5].into_iter().collect();
        cache.prune(&g, &dirty, &config);
        assert_eq!(cache.path_entry((0, 5), || Some(vec![99])), None);
        assert_eq!(cache.path_entry((3, 0), || Some(vec![42])), Some(vec![42]));

        // Bridging the components dirties both sides: nothing negative may
        // survive.
        assert!(g.try_add_edge(2, 3).expect("in range"));
        let dirty: BTreeSet<usize> = [2, 3].into_iter().collect();
        cache.prune(&g, &dirty, &config);
        assert_eq!(cache.path_entry((0, 5), || Some(vec![7])), Some(vec![7]));
    }

    #[test]
    fn draw_cache_serde_round_trips() {
        use serde::{Deserialize, Serialize};

        let mut cache = DrawCache::new();
        let _ = cache.path_entry((1, 4), || Some(vec![1, 2, 3, 4]));
        let _ = cache.path_entry((9, 2), || None);
        let _ = cache.tree_entry(3, || vec![2, 3, 4]);
        let _ = cache.cycles_entry(7, || vec![vec![7, 8, 9], vec![7, 1, 2]]);
        let back = DrawCache::from_value(&cache.to_value()).expect("round trip");
        assert_eq!(back.len(), cache.len());
        assert_eq!(back.counters(), cache.counters());
        let mut back = back;
        assert_eq!(
            back.path_entry((1, 4), || None),
            Some(vec![1, 2, 3, 4]),
            "restored entries must answer draws"
        );
        assert_eq!(back.path_entry((9, 2), || Some(vec![0])), None);
    }

    #[test]
    fn empty_dirty_set_prunes_nothing_and_clear_drops_everything() {
        let g = line_graph(5);
        let config = SamplingConfig::default();
        let mut cache = DrawCache::new();
        let _ = cache.tree_entry(2, || vec![1, 2, 3]);
        assert_eq!(cache.prune(&g, &BTreeSet::new(), &config), 0);
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.misses(), 1, "counters survive clear()");
    }
}
