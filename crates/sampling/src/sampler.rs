//! Implementation of the candidate-group sampler.

use std::collections::BTreeSet;

use grgad_graph::algorithms::{bounded_bfs_tree, cycles_through_budgeted, shortest_path};
use grgad_graph::{Graph, Group};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::cache::DrawCache;

/// Hyperparameters of Alg. 1.
///
/// Serde is hand-written (below) instead of derived for one reason: this
/// config is persisted inside saved `TrainedTpGrGad` models, and
/// `max_cycle_dfs_steps` was added after models already existed in the
/// wild — deserialization defaults it when the snapshot predates the field,
/// so old artifacts keep loading (same policy as the core config's
/// `num_threads`).
#[derive(Clone, Debug)]
pub struct SamplingConfig {
    /// Depth bound `t` of the tree search.
    pub tree_depth: usize,
    /// Maximum number of nodes admitted into any candidate group.
    pub max_group_size: usize,
    /// Maximum length (in nodes) of cycles reported by the cycle search.
    pub max_cycle_len: usize,
    /// Maximum number of cycles enumerated per anchor node.
    pub max_cycles_per_anchor: usize,
    /// Maximum length (in nodes) of paths admitted as candidate groups.
    pub max_path_len: usize,
    /// Maximum number of anchor pairs examined (pairs are subsampled with a
    /// seeded RNG when the quadratic blow-up would exceed this bound).
    pub max_anchor_pairs: usize,
    /// Global cap on the number of candidate groups returned.
    pub max_groups: usize,
    /// Minimum group size (singletons are rarely meaningful groups).
    pub min_group_size: usize,
    /// Number of additional background reference groups sampled as BFS trees
    /// rooted at random non-anchor nodes. These give the downstream outlier
    /// detector a population of ordinary groups to contrast the anchor-based
    /// candidates against (implementation note in DESIGN.md §4).
    pub background_groups: usize,
    /// Work budget (edge extensions) for the per-anchor cycle DFS. The
    /// search is output-sensitive in the number of cycles, but around
    /// high-degree hubs (power-law graphs) the number of simple paths it
    /// must walk can explode even when few cycles exist; the budget bounds
    /// that. `usize::MAX` (the default) reproduces the unbudgeted search.
    pub max_cycle_dfs_steps: usize,
    /// RNG seed for pair subsampling.
    pub seed: u64,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        Self {
            tree_depth: 2,
            max_group_size: 30,
            max_cycle_len: 10,
            max_cycles_per_anchor: 5,
            max_path_len: 12,
            max_anchor_pairs: 2000,
            max_groups: 1500,
            min_group_size: 2,
            background_groups: 200,
            max_cycle_dfs_steps: usize::MAX,
            seed: 0,
        }
    }
}

// Hand-written serde: every field round-trips, but `max_cycle_dfs_steps`
// tolerates snapshots written before it existed (see the struct-level doc).
impl serde::Serialize for SamplingConfig {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("tree_depth".to_string(), self.tree_depth.to_value()),
            ("max_group_size".to_string(), self.max_group_size.to_value()),
            ("max_cycle_len".to_string(), self.max_cycle_len.to_value()),
            (
                "max_cycles_per_anchor".to_string(),
                self.max_cycles_per_anchor.to_value(),
            ),
            ("max_path_len".to_string(), self.max_path_len.to_value()),
            (
                "max_anchor_pairs".to_string(),
                self.max_anchor_pairs.to_value(),
            ),
            ("max_groups".to_string(), self.max_groups.to_value()),
            ("min_group_size".to_string(), self.min_group_size.to_value()),
            (
                "background_groups".to_string(),
                self.background_groups.to_value(),
            ),
            (
                "max_cycle_dfs_steps".to_string(),
                self.max_cycle_dfs_steps.to_value(),
            ),
            ("seed".to_string(), self.seed.to_value()),
        ])
    }
}

impl serde::Deserialize for SamplingConfig {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        use serde::Deserialize;
        Ok(Self {
            tree_depth: Deserialize::from_value(value.field("tree_depth")?)?,
            max_group_size: Deserialize::from_value(value.field("max_group_size")?)?,
            max_cycle_len: Deserialize::from_value(value.field("max_cycle_len")?)?,
            max_cycles_per_anchor: Deserialize::from_value(value.field("max_cycles_per_anchor")?)?,
            max_path_len: Deserialize::from_value(value.field("max_path_len")?)?,
            max_anchor_pairs: Deserialize::from_value(value.field("max_anchor_pairs")?)?,
            max_groups: Deserialize::from_value(value.field("max_groups")?)?,
            min_group_size: Deserialize::from_value(value.field("min_group_size")?)?,
            background_groups: Deserialize::from_value(value.field("background_groups")?)?,
            // Added after saved models existed: default (the exact legacy
            // behaviour) when the snapshot predates the field.
            max_cycle_dfs_steps: match value.field("max_cycle_dfs_steps") {
                Ok(v) => Deserialize::from_value(v)?,
                Err(_) => usize::MAX,
            },
            seed: Deserialize::from_value(value.field("seed")?)?,
        })
    }
}

/// Book-keeping about what the sampler produced, useful for experiment logs.
#[derive(Clone, Debug, Default)]
pub struct SamplingStats {
    /// Number of groups discovered by the path search.
    pub from_paths: usize,
    /// Number of groups discovered by the tree search.
    pub from_trees: usize,
    /// Number of groups discovered by the cycle search.
    pub from_cycles: usize,
    /// Number of background reference groups added.
    pub from_background: usize,
    /// Number of exact-duplicate node sets discarded.
    pub duplicates_removed: usize,
    /// Number of anchor pairs examined.
    pub pairs_examined: usize,
}

/// The three graph searches of Alg. 1 behind one seam, so the sampler's
/// outer loop (pair enumeration, RNG draws, dedup, caps) is written once
/// and runs identically whether each draw is computed fresh or answered
/// from a [`DrawCache`]. The searches never consume the RNG — that is what
/// makes memoized replay bit-identical (see `crate::cache`).
trait DrawOracle {
    fn path(&mut self, graph: &Graph, v: usize, mu: usize) -> Option<Vec<usize>>;
    fn tree(&mut self, graph: &Graph, root: usize, config: &SamplingConfig) -> Vec<usize>;
    fn cycles(&mut self, graph: &Graph, v: usize, config: &SamplingConfig) -> Vec<Vec<usize>>;
}

/// Always runs the underlying search — the historical behaviour.
struct FreshOracle;

impl DrawOracle for FreshOracle {
    fn path(&mut self, graph: &Graph, v: usize, mu: usize) -> Option<Vec<usize>> {
        shortest_path(graph, v, mu)
    }

    fn tree(&mut self, graph: &Graph, root: usize, config: &SamplingConfig) -> Vec<usize> {
        bounded_bfs_tree(graph, root, config.tree_depth, config.max_group_size)
    }

    fn cycles(&mut self, graph: &Graph, v: usize, config: &SamplingConfig) -> Vec<Vec<usize>> {
        cycles_through_budgeted(
            graph,
            v,
            config.max_cycle_len,
            config.max_cycles_per_anchor,
            config.max_cycle_dfs_steps,
        )
    }
}

/// Answers draws from a [`DrawCache`], running (and memoizing) the search
/// only on a miss.
struct CachedOracle<'a> {
    cache: &'a mut DrawCache,
}

impl DrawOracle for CachedOracle<'_> {
    fn path(&mut self, graph: &Graph, v: usize, mu: usize) -> Option<Vec<usize>> {
        self.cache
            .path_entry((v, mu), || shortest_path(graph, v, mu))
    }

    fn tree(&mut self, graph: &Graph, root: usize, config: &SamplingConfig) -> Vec<usize> {
        self.cache.tree_entry(root, || {
            bounded_bfs_tree(graph, root, config.tree_depth, config.max_group_size)
        })
    }

    fn cycles(&mut self, graph: &Graph, v: usize, config: &SamplingConfig) -> Vec<Vec<usize>> {
        self.cache.cycles_entry(v, || {
            cycles_through_budgeted(
                graph,
                v,
                config.max_cycle_len,
                config.max_cycles_per_anchor,
                config.max_cycle_dfs_steps,
            )
        })
    }
}

/// Samples candidate anomaly groups from the anchors (Alg. 1).
pub fn sample_candidate_groups(
    graph: &Graph,
    anchors: &[usize],
    config: &SamplingConfig,
) -> (Vec<Group>, SamplingStats) {
    sample_with_oracle(graph, anchors, config, &mut FreshOracle)
}

/// [`sample_candidate_groups`] answering each graph search from `cache`
/// (memoizing misses). Output is **bit-for-bit identical** to the fresh
/// sampler as long as the cache has been [`DrawCache::prune`]d for every
/// topology change since its entries were recorded — the incremental
/// scoring path's contract.
pub fn sample_candidate_groups_cached(
    graph: &Graph,
    anchors: &[usize],
    config: &SamplingConfig,
    cache: &mut DrawCache,
) -> (Vec<Group>, SamplingStats) {
    sample_with_oracle(graph, anchors, config, &mut CachedOracle { cache })
}

fn sample_with_oracle(
    graph: &Graph,
    anchors: &[usize],
    config: &SamplingConfig,
    oracle: &mut impl DrawOracle,
) -> (Vec<Group>, SamplingStats) {
    let mut stats = SamplingStats::default();
    let mut seen: BTreeSet<Group> = BTreeSet::new();
    let mut groups: Vec<Group> = Vec::new();
    let mut rng = StdRng::seed_from_u64(config.seed);

    let push = |nodes: Vec<usize>,
                seen: &mut BTreeSet<Group>,
                groups: &mut Vec<Group>,
                stats: &mut SamplingStats,
                source: Source| {
        if nodes.len() < config.min_group_size || nodes.len() > config.max_group_size {
            return;
        }
        let group = Group::new(nodes);
        if seen.insert(group.clone()) {
            match source {
                Source::Path => stats.from_paths += 1,
                Source::Tree => stats.from_trees += 1,
                Source::Cycle => stats.from_cycles += 1,
                Source::Background => stats.from_background += 1,
            }
            groups.push(group);
        } else {
            stats.duplicates_removed += 1;
        }
    };

    // Ordered anchor pairs, subsampled when quadratic growth is too large.
    //
    // Two regimes share one seed: below `PAIR_MATERIALIZE_CUTOFF` the full
    // pair list is materialized and shuffled (the historical behaviour,
    // kept bit-for-bit for every existing workload); above it — e.g. 10k
    // anchors on a 100k-node graph would mean 10⁸ pairs and gigabytes of
    // memory — distinct pairs are drawn directly from the seeded RNG in
    // O(max_anchor_pairs) space.
    const PAIR_MATERIALIZE_CUTOFF: usize = 1_000_000;
    let total_pairs = anchors
        .len()
        .saturating_mul(anchors.len().saturating_sub(1));
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    if total_pairs > PAIR_MATERIALIZE_CUTOFF && total_pairs > config.max_anchor_pairs {
        let mut drawn: BTreeSet<(usize, usize)> = BTreeSet::new();
        while pairs.len() < config.max_anchor_pairs {
            let i = rng.gen_range(0..anchors.len());
            let j = rng.gen_range(0..anchors.len());
            if i != j && drawn.insert((i, j)) {
                pairs.push((anchors[i], anchors[j]));
            }
        }
    } else {
        for &v in anchors {
            for &mu in anchors {
                if v != mu {
                    pairs.push((v, mu));
                }
            }
        }
        if pairs.len() > config.max_anchor_pairs {
            pairs.shuffle(&mut rng);
            pairs.truncate(config.max_anchor_pairs);
        }
    }
    stats.pairs_examined = pairs.len();

    for &(v, mu) in &pairs {
        if groups.len() >= config.max_groups {
            break;
        }
        // Path search (Line 5 of Alg. 1).
        if let Some(path) = oracle.path(graph, v, mu) {
            if path.len() <= config.max_path_len {
                push(path, &mut seen, &mut groups, &mut stats, Source::Path);
            }
        }
        // Tree search (Line 7 of Alg. 1): depth-bounded BFS tree from v.
        let tree = oracle.tree(graph, v, config);
        push(tree, &mut seen, &mut groups, &mut stats, Source::Tree);
    }

    // Cycle search per anchor (Line 10 of Alg. 1).
    for &v in anchors {
        if groups.len() >= config.max_groups {
            break;
        }
        for cycle in oracle.cycles(graph, v, config) {
            push(cycle, &mut seen, &mut groups, &mut stats, Source::Cycle);
        }
    }

    // Background reference groups: BFS trees rooted at random non-anchor
    // nodes, giving the outlier detector a baseline population of ordinary
    // neighbourhood groups.
    if config.background_groups > 0 && !anchors.is_empty() && graph.num_nodes() > anchors.len() {
        let anchor_set: BTreeSet<usize> = anchors.iter().copied().collect();
        let mut non_anchors: Vec<usize> = (0..graph.num_nodes())
            .filter(|v| !anchor_set.contains(v))
            .collect();
        non_anchors.shuffle(&mut rng);
        for &root in non_anchors.iter().take(config.background_groups) {
            let tree = oracle.tree(graph, root, config);
            push(tree, &mut seen, &mut groups, &mut stats, Source::Background);
        }
    }

    groups.truncate(config.max_groups);
    (groups, stats)
}

enum Source {
    Path,
    Tree,
    Cycle,
    Background,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A graph with a path region, a star (tree) region and a cycle region.
    fn structured_graph() -> Graph {
        let mut g = Graph::with_no_features(20);
        // path: 0-1-2-3-4
        for i in 0..4 {
            g.add_edge(i, i + 1);
        }
        // star: 5 is hub for 6..10
        for v in 6..=10 {
            g.add_edge(5, v);
        }
        // cycle: 11-12-13-14-11
        g.add_edge(11, 12);
        g.add_edge(12, 13);
        g.add_edge(13, 14);
        g.add_edge(14, 11);
        // connect regions loosely
        g.add_edge(4, 5);
        g.add_edge(10, 11);
        g
    }

    #[test]
    fn finds_path_tree_and_cycle_groups() {
        let g = structured_graph();
        let anchors = vec![0, 4, 5, 11, 13];
        let (groups, stats) = sample_candidate_groups(&g, &anchors, &SamplingConfig::default());
        assert!(!groups.is_empty());
        assert!(stats.from_paths > 0, "expected path groups: {stats:?}");
        assert!(stats.from_trees > 0, "expected tree groups: {stats:?}");
        // The 4-cycle must appear as a candidate (regardless of which search
        // discovered it first).
        let cycle_group = Group::new(vec![11, 12, 13, 14]);
        assert!(groups.contains(&cycle_group));
    }

    #[test]
    fn cycle_search_contributes_when_trees_cannot_cover_the_cycle() {
        // A 6-cycle: with tree depth 1 the BFS trees only see stars of size 3,
        // so only the cycle search can produce the full ring.
        let mut g = Graph::with_no_features(6);
        for i in 0..6 {
            g.add_edge(i, (i + 1) % 6);
        }
        let config = SamplingConfig {
            tree_depth: 1,
            ..Default::default()
        };
        let (groups, stats) = sample_candidate_groups(&g, &[0], &config);
        assert!(stats.from_cycles > 0, "expected cycle groups: {stats:?}");
        assert!(groups.contains(&Group::new(0..6)));
    }

    #[test]
    fn no_duplicate_groups() {
        let g = structured_graph();
        let anchors = vec![0, 1, 2, 3, 4];
        let (groups, _) = sample_candidate_groups(&g, &anchors, &SamplingConfig::default());
        let unique: BTreeSet<&Group> = groups.iter().collect();
        assert_eq!(unique.len(), groups.len());
    }

    #[test]
    fn respects_group_size_bounds() {
        let g = structured_graph();
        let anchors = vec![0, 4, 5, 11];
        let config = SamplingConfig {
            max_group_size: 4,
            min_group_size: 3,
            ..Default::default()
        };
        let (groups, _) = sample_candidate_groups(&g, &anchors, &config);
        assert!(groups.iter().all(|g| g.len() >= 3 && g.len() <= 4));
    }

    #[test]
    fn respects_global_group_cap() {
        let g = structured_graph();
        let anchors: Vec<usize> = (0..15).collect();
        let config = SamplingConfig {
            max_groups: 5,
            ..Default::default()
        };
        let (groups, _) = sample_candidate_groups(&g, &anchors, &config);
        assert!(groups.len() <= 5);
    }

    #[test]
    fn pair_subsampling_bounds_work() {
        let g = structured_graph();
        let anchors: Vec<usize> = (0..15).collect();
        let config = SamplingConfig {
            max_anchor_pairs: 10,
            ..Default::default()
        };
        let (_, stats) = sample_candidate_groups(&g, &anchors, &config);
        assert_eq!(stats.pairs_examined, 10);
    }

    #[test]
    fn empty_anchors_give_empty_output() {
        let g = structured_graph();
        let (groups, stats) = sample_candidate_groups(&g, &[], &SamplingConfig::default());
        assert!(groups.is_empty());
        assert_eq!(stats.pairs_examined, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = structured_graph();
        let anchors: Vec<usize> = (0..12).collect();
        let config = SamplingConfig {
            max_anchor_pairs: 20,
            seed: 99,
            ..Default::default()
        };
        let (a, _) = sample_candidate_groups(&g, &anchors, &config);
        let (b, _) = sample_candidate_groups(&g, &anchors, &config);
        assert_eq!(a, b);
    }

    #[test]
    fn config_serde_round_trips_and_loads_legacy_snapshots() {
        use serde::{Deserialize, Serialize};

        let config = SamplingConfig {
            max_cycle_dfs_steps: 12_345,
            seed: 9,
            ..Default::default()
        };
        let back = SamplingConfig::from_value(&config.to_value()).unwrap();
        assert_eq!(back.max_cycle_dfs_steps, 12_345);
        assert_eq!(back.seed, 9);
        assert_eq!(back.max_groups, config.max_groups);

        // A snapshot written before `max_cycle_dfs_steps` existed (e.g. a
        // saved TrainedTpGrGad model from an older build) must keep loading,
        // with the field defaulting to the exact legacy behaviour.
        let mut legacy = config.to_value();
        if let serde::Value::Map(entries) = &mut legacy {
            entries.retain(|(k, _)| k != "max_cycle_dfs_steps");
        }
        let loaded = SamplingConfig::from_value(&legacy).unwrap();
        assert_eq!(loaded.max_cycle_dfs_steps, usize::MAX);
        assert_eq!(loaded.seed, 9);
    }

    /// The cached sampler must reproduce the fresh sampler bit-for-bit
    /// across randomized delta rounds, provided the cache is pruned for
    /// every topology change — the incremental scoring contract.
    #[test]
    fn cached_sampler_is_bit_identical_across_delta_rounds() {
        use crate::cache::DrawCache;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let n = 60;
        let mut g = Graph::with_no_features(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1);
        }
        for i in (0..n).step_by(7) {
            g.add_edge(i, (i + 13) % n);
        }
        let config = SamplingConfig {
            max_anchor_pairs: 60,
            max_groups: 300,
            background_groups: 10,
            seed: 21,
            ..Default::default()
        };
        let mut cache = DrawCache::new();
        let mut rng = StdRng::seed_from_u64(5);

        for round in 0..6 {
            // Anchors drift between rounds, as real re-localization would.
            let anchors: Vec<usize> = (0..8).map(|_| rng.gen_range(0..g.num_nodes())).collect();
            let anchors: Vec<usize> = {
                let set: BTreeSet<usize> = anchors.into_iter().collect();
                set.into_iter().collect()
            };

            let (fresh, fresh_stats) = sample_candidate_groups(&g, &anchors, &config);
            let (cached, cached_stats) =
                sample_candidate_groups_cached(&g, &anchors, &config, &mut cache);
            assert_eq!(fresh, cached, "round {round}");
            assert_eq!(fresh_stats.from_paths, cached_stats.from_paths);
            assert_eq!(fresh_stats.from_trees, cached_stats.from_trees);
            assert_eq!(fresh_stats.from_cycles, cached_stats.from_cycles);
            assert_eq!(fresh_stats.from_background, cached_stats.from_background);

            // Mutate a few edges and prune the cache for exactly those
            // endpoints.
            let mut dirty = BTreeSet::new();
            for _ in 0..2 {
                let u = rng.gen_range(0..g.num_nodes());
                let v = rng.gen_range(0..g.num_nodes());
                let changed = if g.has_edge(u, v) {
                    g.try_remove_edge(u, v).expect("in range")
                } else {
                    g.try_add_edge(u, v).expect("in range")
                };
                if changed {
                    dirty.insert(u);
                    dirty.insert(v);
                }
            }
            cache.prune(&g, &dirty, &config);
        }
        assert!(cache.hits() > 0, "repeat rounds must reuse draws");
    }

    #[test]
    fn huge_anchor_sets_sample_pairs_without_materializing_the_square() {
        // 1100 anchors → ~1.2M ordered pairs, past the materialization
        // cutoff: pairs must be drawn directly, stay within the budget, and
        // remain deterministic for a fixed seed.
        let n = 1_100;
        let mut g = Graph::with_no_features(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1);
        }
        let anchors: Vec<usize> = (0..n).collect();
        let config = SamplingConfig {
            max_anchor_pairs: 50,
            max_groups: 200,
            background_groups: 0,
            seed: 7,
            ..Default::default()
        };
        let (a, stats) = sample_candidate_groups(&g, &anchors, &config);
        assert_eq!(stats.pairs_examined, 50);
        assert!(!a.is_empty());
        let (b, _) = sample_candidate_groups(&g, &anchors, &config);
        assert_eq!(a, b);
    }
}
