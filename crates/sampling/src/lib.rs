//! Candidate-group sampling (Alg. 1 of the paper).
//!
//! Starting from the anchor nodes located by MH-GAE, three pattern-search
//! primitives produce candidate anomaly groups:
//!
//! * **path search** between every ordered pair of anchors (Bellman–Ford /
//!   BFS shortest paths),
//! * **tree search**: a depth-bounded BFS tree rooted at the first anchor of
//!   each pair (hyperparameter `t` in Alg. 1), and
//! * **cycle search**: simple cycles through each anchor (bounded
//!   Birmelé-style enumeration).
//!
//! The union of the discovered node sets — deduplicated, size-capped and
//! count-capped — forms the candidate-group set handed to TPGCL. Overlapping
//! and repeated patterns are *intentionally kept* when they come from
//! different searches (the paper notes they enrich the contrastive training
//! set); only exact duplicates of the same node set are removed.

// The serving contract extends workspace-wide: no `unwrap()` outside
// test code — fallible paths return `Result<_, GrgadError>` or justify
// themselves with `expect` + a `grgad-lint` suppression where truly
// infallible. Enforced per-crate so the vendored shims stay untouched.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
mod cache;
mod sampler;

pub use cache::DrawCache;
pub use sampler::{
    sample_candidate_groups, sample_candidate_groups_cached, SamplingConfig, SamplingStats,
};
