//! A SUOD-style ensemble: several base detectors are run on the same data and
//! their rank-normalized scores are averaged. SUOD's contribution is the
//! systems-level acceleration of large heterogeneous detector ensembles; the
//! statistical behaviour that the paper relies on (robust consensus scoring)
//! is reproduced here by the rank-average combination rule.

use grgad_linalg::stats::ranks;
use grgad_linalg::Matrix;

use crate::{Ecod, IsolationForest, Lof, OutlierDetector, ZScore};

/// An ensemble of boxed outlier detectors combined by rank averaging.
pub struct Ensemble {
    members: Vec<Box<dyn OutlierDetector>>,
}

impl Ensemble {
    /// Creates an ensemble from the given members.
    ///
    /// # Panics
    /// Panics if `members` is empty.
    pub fn new(members: Vec<Box<dyn OutlierDetector>>) -> Self {
        assert!(
            !members.is_empty(),
            "Ensemble::new: need at least one member"
        );
        Self { members }
    }

    /// The default ensemble used in this workspace: ECOD + z-score + LOF +
    /// isolation forest (mirroring a typical SUOD configuration).
    pub fn suod_like(seed: u64) -> Self {
        Self::new(vec![
            Box::new(Ecod::new()),
            Box::new(ZScore::new()),
            Box::new(Lof::new(10)),
            Box::new(IsolationForest::new(100, 64, seed)),
        ])
    }

    /// Number of ensemble members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the ensemble has no members (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

impl OutlierDetector for Ensemble {
    fn fit_score(&self, data: &Matrix) -> Vec<f32> {
        let m = data.rows();
        if m == 0 {
            return Vec::new();
        }
        let mut combined = vec![0.0_f32; m];
        for member in &self.members {
            let scores = member.fit_score(data);
            // Rank-normalize into [0, 1] so members with different scales get
            // equal votes.
            let r = ranks(&scores);
            for (i, &rank) in r.iter().enumerate() {
                combined[i] += (rank - 1.0) / (m.max(2) - 1) as f32;
            }
        }
        for v in &mut combined {
            *v /= self.members.len() as f32;
        }
        combined
    }

    fn name(&self) -> &'static str {
        "Ensemble"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::assert_detects_outliers;

    #[test]
    fn detects_planted_outliers() {
        assert_detects_outliers(&Ensemble::suod_like(1));
    }

    #[test]
    fn scores_are_in_unit_interval() {
        let (data, _) = crate::test_support::cluster_with_outliers();
        let scores = Ensemble::suod_like(1).fit_score(&data);
        assert!(scores.iter().all(|&s| (0.0..=1.0).contains(&s)));
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_ensemble_rejected() {
        let _ = Ensemble::new(Vec::new());
    }

    #[test]
    fn single_member_matches_rank_order_of_that_member() {
        let (data, _) = crate::test_support::cluster_with_outliers();
        let base = Ecod::new().fit_score(&data);
        let ens = Ensemble::new(vec![Box::new(Ecod::new())]).fit_score(&data);
        // Same ordering of the top element.
        let argmax = |v: &[f32]| {
            v.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0
        };
        assert_eq!(argmax(&base), argmax(&ens));
        assert_eq!(Ensemble::suod_like(0).len(), 4);
        assert!(!Ensemble::suod_like(0).is_empty());
    }
}
