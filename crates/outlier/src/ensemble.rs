//! A SUOD-style ensemble: several base detectors are fitted on the same data
//! and their rank-normalized scores are averaged. SUOD's contribution is the
//! systems-level acceleration of large heterogeneous detector ensembles; the
//! statistical behaviour that the paper relies on (robust consensus scoring)
//! is reproduced here by the rank-average combination rule.
//!
//! `fit` fits every member; `score` rank-averages the members' scores within
//! the scored batch. Persistence delegates to each member's state, keyed by
//! its name so a reloaded ensemble must have the same member line-up.

use grgad_linalg::stats::ranks;
use grgad_linalg::Matrix;
use serde::Deserialize as _;

use crate::{Ecod, IsolationForest, Lof, OutlierDetector, ZScore};

/// An ensemble of boxed outlier detectors combined by rank averaging.
pub struct Ensemble {
    members: Vec<Box<dyn OutlierDetector>>,
    /// Rows the ensemble was fitted on; `None` until [`Ensemble::fit`].
    /// Needed so a degenerate empty fit scores zeros rather than letting the
    /// rank normalization turn constant member scores into 0.5.
    train_rows: Option<usize>,
}

impl Ensemble {
    /// Creates an ensemble from the given members.
    ///
    /// # Panics
    /// Panics if `members` is empty.
    pub fn new(members: Vec<Box<dyn OutlierDetector>>) -> Self {
        assert!(
            !members.is_empty(),
            "Ensemble::new: need at least one member"
        );
        Self {
            members,
            train_rows: None,
        }
    }

    /// The default ensemble used in this workspace: ECOD + z-score + LOF +
    /// isolation forest (mirroring a typical SUOD configuration).
    pub fn suod_like(seed: u64) -> Self {
        Self::new(vec![
            Box::new(Ecod::new()),
            Box::new(ZScore::new()),
            Box::new(Lof::new(10)),
            Box::new(IsolationForest::new(100, 64, seed)),
        ])
    }

    /// Number of ensemble members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the ensemble has no members (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

impl OutlierDetector for Ensemble {
    fn fit(&mut self, data: &Matrix) {
        for member in &mut self.members {
            member.fit(data);
        }
        self.train_rows = Some(data.rows());
    }

    // NOTE: the rank-average combination rule makes ensemble scores
    // *batch-relative* — each row is ranked against the other rows of the
    // same `score` call, matching SUOD/legacy `fit_score` semantics. Scores
    // from different calls (or single-row batches) are not comparable; score
    // related observations together.
    fn score(&self, data: &Matrix) -> Vec<f32> {
        let m = data.rows();
        if m == 0 {
            return Vec::new();
        }
        if self.train_rows == Some(0) {
            return vec![0.0; m];
        }
        // Members are scored sequentially on purpose: each member's own
        // `score` is already row-parallel on the shared backend, and nesting
        // a member-level par_map on top would oversubscribe the cores
        // (members × max_threads scoped threads) for no wall-clock gain.
        // Accumulating in member order keeps the output identical at any
        // thread count.
        let mut combined = vec![0.0_f32; m];
        for member in &self.members {
            let scores = member.score(data);
            // Rank-normalize into [0, 1] so members with different scales get
            // equal votes.
            let r = ranks(&scores);
            for (i, &rank) in r.iter().enumerate() {
                combined[i] += (rank - 1.0) / (m.max(2) - 1) as f32;
            }
        }
        for v in &mut combined {
            *v /= self.members.len() as f32;
        }
        combined
    }

    fn save_state(&self) -> serde::Value {
        let members = serde::Value::Seq(
            self.members
                .iter()
                .map(|member| {
                    serde::Value::Map(vec![
                        (
                            "name".to_string(),
                            serde::Value::Str(member.name().to_string()),
                        ),
                        ("state".to_string(), member.save_state()),
                    ])
                })
                .collect(),
        );
        serde::Value::Map(vec![
            (
                "train_rows".to_string(),
                serde::Serialize::to_value(&self.train_rows.expect("Ensemble: call fit() first")),
            ),
            ("members".to_string(), members),
        ])
    }

    fn load_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        let train_rows = usize::from_value(state.field("train_rows")?)?;
        let entries = match state.field("members")? {
            serde::Value::Seq(entries) => entries,
            _ => return Err(serde::Error::custom("Ensemble: expected member list")),
        };
        if entries.len() != self.members.len() {
            return Err(serde::Error::custom(format!(
                "Ensemble: snapshot has {} members, this ensemble has {}",
                entries.len(),
                self.members.len()
            )));
        }
        for (member, entry) in self.members.iter_mut().zip(entries) {
            let name = String::from_value(entry.field("name")?)?;
            if name != member.name() {
                return Err(serde::Error::custom(format!(
                    "Ensemble: snapshot member `{name}` does not match `{}`",
                    member.name()
                )));
            }
            member.load_state(entry.field("state")?)?;
        }
        self.train_rows = Some(train_rows);
        Ok(())
    }

    fn name(&self) -> &'static str {
        "Ensemble"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{
        assert_detects_outliers, assert_empty_fit_scores_zero, assert_fit_score_contract,
    };

    #[test]
    fn detects_planted_outliers() {
        assert_detects_outliers(&mut Ensemble::suod_like(1));
    }

    #[test]
    fn fit_score_contract_holds() {
        assert_fit_score_contract(&mut Ensemble::suod_like(1));
        assert_empty_fit_scores_zero(&mut Ensemble::suod_like(1));
    }

    #[test]
    fn scores_are_in_unit_interval() {
        let (data, _) = crate::test_support::cluster_with_outliers();
        let scores = Ensemble::suod_like(1).fit_score(&data);
        assert!(scores.iter().all(|&s| (0.0..=1.0).contains(&s)));
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_ensemble_rejected() {
        let _ = Ensemble::new(Vec::new());
    }

    /// Regression companion to ZScore's zero-variance guard: a constant
    /// training column must not leak `inf`/`NaN` into the rank-average
    /// combination (before the guard, `(x - mu) / 0` poisoned the ensemble
    /// votes ahead of any downstream filtering).
    #[test]
    fn constant_training_column_does_not_poison_ensemble() {
        let (mut data, outliers) = crate::test_support::cluster_with_outliers();
        // Append a constant column by rebuilding with an extra dimension.
        let m = data.rows();
        let mut widened = Matrix::zeros(m, 3);
        for i in 0..m {
            widened.row_mut(i)[..2].copy_from_slice(data.row(i));
            widened.row_mut(i)[2] = 7.5; // zero variance
        }
        data = widened;
        let scores = Ensemble::suod_like(3).fit_score(&data);
        assert!(
            scores.iter().all(|s| s.is_finite()),
            "constant column leaked non-finite ensemble scores: {scores:?}"
        );
        // The planted outliers must still outrank the median inlier.
        let mut inlier: Vec<f32> = (0..40).map(|i| scores[i]).collect();
        inlier.sort_by(f32::total_cmp);
        for &o in &outliers {
            assert!(scores[o] > inlier[20], "outlier {o} lost to median inlier");
        }
    }

    #[test]
    fn mismatched_snapshot_is_rejected() {
        let (data, _) = crate::test_support::cluster_with_outliers();
        let mut full = Ensemble::suod_like(0);
        full.fit(&data);
        let snapshot = full.save_state();
        let mut single = Ensemble::new(vec![Box::new(Ecod::new())]);
        assert!(single.load_state(&snapshot).is_err());
    }

    #[test]
    fn single_member_matches_rank_order_of_that_member() {
        let (data, _) = crate::test_support::cluster_with_outliers();
        let base = Ecod::new().fit_score(&data);
        let ens = Ensemble::new(vec![Box::new(Ecod::new())]).fit_score(&data);
        // Same ordering of the top element.
        let argmax = |v: &[f32]| {
            v.iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0
        };
        assert_eq!(argmax(&base), argmax(&ens));
        assert_eq!(Ensemble::suod_like(0).len(), 4);
        assert!(!Ensemble::suod_like(0).is_empty());
    }
}
