//! Unsupervised outlier detectors used to score TPGCL group embeddings.
//!
//! The paper feeds the candidate-group embeddings into an off-the-shelf
//! unsupervised outlier detector — ECOD (Li et al., TKDE 2022) in the main
//! experiments, with SUOD mentioned as an alternative ensemble accelerator.
//! This crate implements:
//!
//! * [`Ecod`] — empirical-cumulative-distribution-based outlier detection,
//!   the paper's default scorer.
//! * [`ZScore`] — a simple Gaussian tail scorer (baseline / sanity check).
//! * [`Lof`] — the Local Outlier Factor.
//! * [`IsolationForest`] — isolation forests over the embedding space.
//! * [`Ensemble`] — a SUOD-style average of rank-normalized detector scores.
//!
//! All detectors implement [`OutlierDetector`] with a PyOD-style split:
//! [`OutlierDetector::fit`] estimates the detector's state from an `m × d`
//! matrix of training observations, [`OutlierDetector::score`] maps any
//! matrix with the same number of columns to one anomaly score per row
//! (**higher means more anomalous**), and the legacy one-shot
//! [`OutlierDetector::fit_score`] is kept as a default-method shim.
//!
//! Scoring the training matrix itself reproduces the legacy transductive
//! scores bit-for-bit; scoring unseen rows evaluates them against the fitted
//! state without refitting. Fitted state round-trips through
//! [`OutlierDetector::save_state`] / [`OutlierDetector::load_state`] so a
//! trained pipeline can be persisted as JSON.

// The serving contract extends workspace-wide: no `unwrap()` outside
// test code — fallible paths return `Result<_, GrgadError>` or justify
// themselves with `expect` + a `grgad-lint` suppression where truly
// infallible. Enforced per-crate so the vendored shims stay untouched.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
pub mod ecod;
pub mod ensemble;
pub mod iforest;
pub mod lof;
pub mod zscore;

pub use ecod::Ecod;
pub use ensemble::Ensemble;
pub use iforest::IsolationForest;
pub use lof::Lof;
pub use zscore::ZScore;

use grgad_linalg::Matrix;

/// Common interface of all unsupervised outlier detectors.
///
/// `Send + Sync` is part of the contract so fitted detectors can be shared
/// with the `grgad_parallel` worker threads (e.g. the ensemble scores its
/// members concurrently); every detector here is plain data after `fit`.
pub trait OutlierDetector: Send + Sync {
    /// Estimates the detector's state from the rows of `data`.
    ///
    /// Fitting on an empty matrix is allowed and yields a degenerate state
    /// whose [`OutlierDetector::score`] returns `0.0` for every row.
    fn fit(&mut self, data: &Matrix);

    /// Scores each row of `data` against the fitted state (higher = more
    /// anomalous). Scoring the training matrix reproduces the transductive
    /// scores of [`OutlierDetector::fit_score`] exactly.
    ///
    /// # Panics
    /// Panics if the detector has not been fitted.
    fn score(&self, data: &Matrix) -> Vec<f32>;

    /// Legacy one-shot API: fits on `data` and scores the same rows.
    fn fit_score(&mut self, data: &Matrix) -> Vec<f32> {
        self.fit(data);
        self.score(data)
    }

    /// Serializes the fitted state (weights, ECDFs, trees, …) as a
    /// JSON-shaped value for model persistence.
    ///
    /// # Panics
    /// Panics if the detector has not been fitted.
    fn save_state(&self) -> serde::Value;

    /// Restores the fitted state from a [`OutlierDetector::save_state`]
    /// snapshot.
    fn load_state(&mut self, state: &serde::Value) -> Result<(), serde::Error>;

    /// A short human-readable name.
    fn name(&self) -> &'static str;
}

/// Normalizes scores into `[0, 1]` by min-max scaling (constant scores map
/// to 0.5 so thresholding stays meaningful).
pub fn normalize_scores(scores: &[f32]) -> Vec<f32> {
    let lo = scores.iter().copied().fold(f32::INFINITY, f32::min);
    let hi = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let range = hi - lo;
    if !range.is_finite() || range <= 0.0 {
        return vec![0.5; scores.len()];
    }
    scores.iter().map(|&s| (s - lo) / range).collect()
}

/// Converts scores into binary predictions by flagging the top
/// `contamination` fraction of rows (at least one when the input is
/// non-empty and contamination > 0).
pub fn threshold_by_contamination(scores: &[f32], contamination: f32) -> Vec<bool> {
    let m = scores.len();
    if m == 0 {
        return Vec::new();
    }
    let contamination = contamination.clamp(0.0, 1.0);
    if contamination == 0.0 {
        return vec![false; m];
    }
    let k = ((m as f32 * contamination).round() as usize).clamp(1, m);
    let mut idx: Vec<usize> = (0..m).collect();
    idx.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    let mut flags = vec![false; m];
    for &i in idx.iter().take(k) {
        flags[i] = true;
    }
    flags
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;

    /// Shared helper for detector tests: a dense cluster plus clear outliers.
    pub(crate) fn cluster_with_outliers() -> (Matrix, Vec<usize>) {
        let mut rows: Vec<Vec<f32>> = Vec::new();
        // 40 inliers near the origin (deterministic lattice jitter).
        for i in 0..40 {
            let dx = (i % 7) as f32 * 0.01;
            let dy = (i % 5) as f32 * 0.01;
            rows.push(vec![dx, dy]);
        }
        // 4 far-away outliers.
        let outlier_idx = vec![40, 41, 42, 43];
        rows.push(vec![5.0, 5.0]);
        rows.push(vec![-6.0, 4.0]);
        rows.push(vec![7.0, -5.0]);
        rows.push(vec![-4.0, -6.0]);
        let data = Matrix::from_vec(
            rows.len(),
            2,
            rows.into_iter().flatten().collect::<Vec<f32>>(),
        );
        (data, outlier_idx)
    }

    /// Asserts that a detector ranks all planted outliers above the median
    /// inlier.
    pub(crate) fn assert_detects_outliers(detector: &mut dyn OutlierDetector) {
        let (data, outliers) = cluster_with_outliers();
        let scores = detector.fit_score(&data);
        assert_eq!(scores.len(), data.rows());
        let mut inlier_scores: Vec<f32> = (0..40).map(|i| scores[i]).collect();
        inlier_scores.sort_by(f32::total_cmp);
        let median_inlier = inlier_scores[20];
        for &o in &outliers {
            assert!(
                scores[o] > median_inlier,
                "{}: outlier {o} scored {} <= median inlier {median_inlier}",
                detector.name(),
                scores[o]
            );
        }
    }

    /// Asserts the fit/score contract shared by every detector: scoring the
    /// training data reproduces `fit_score` exactly, scoring is idempotent,
    /// unseen rows get finite scores, and the fitted state survives a
    /// save/load round trip bit-for-bit.
    pub(crate) fn assert_fit_score_contract(detector: &mut dyn OutlierDetector) {
        let (data, _) = cluster_with_outliers();
        let legacy = detector.fit_score(&data);
        let train_scores = detector.score(&data);
        assert_eq!(
            legacy,
            train_scores,
            "{}: score(train) must equal fit_score(train)",
            detector.name()
        );
        assert_eq!(train_scores, detector.score(&data), "score not idempotent");

        // Unseen rows: one deep inside the cluster, one far away.
        let unseen = Matrix::from_rows(&[&[0.02, 0.02], &[9.0, -9.0]]);
        let unseen_scores = detector.score(&unseen);
        assert_eq!(unseen_scores.len(), 2);
        assert!(
            unseen_scores.iter().all(|s| s.is_finite()),
            "{}: unseen scores must be finite, got {unseen_scores:?}",
            detector.name()
        );

        // Persistence round trip.
        let json = serde_json::to_string(&detector.save_state()).unwrap();
        let value: serde::Value = serde_json::from_str(&json).unwrap();
        detector.load_state(&value).unwrap();
        assert_eq!(
            legacy,
            detector.score(&data),
            "{}: reloaded state must reproduce training scores",
            detector.name()
        );
        assert_eq!(unseen_scores, detector.score(&unseen));
    }

    /// Asserts that fitting on an empty matrix yields zero scores instead of
    /// panicking (the pipeline hits this when a graph produces no candidate
    /// groups).
    pub(crate) fn assert_empty_fit_scores_zero(detector: &mut dyn OutlierDetector) {
        detector.fit(&Matrix::zeros(0, 0));
        assert_eq!(detector.score(&Matrix::zeros(3, 2)), vec![0.0; 3]);
        assert!(detector.score(&Matrix::zeros(0, 2)).is_empty());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_scores_handles_constant_and_regular_input() {
        assert_eq!(normalize_scores(&[2.0, 2.0, 2.0]), vec![0.5, 0.5, 0.5]);
        let n = normalize_scores(&[0.0, 5.0, 10.0]);
        assert_eq!(n, vec![0.0, 0.5, 1.0]);
        assert!(normalize_scores(&[]).is_empty());
    }

    #[test]
    fn threshold_flags_top_fraction() {
        let scores = vec![0.1, 0.9, 0.5, 0.7];
        let flags = threshold_by_contamination(&scores, 0.5);
        assert_eq!(flags, vec![false, true, false, true]);
        assert_eq!(threshold_by_contamination(&scores, 0.0), vec![false; 4]);
        // at least one flagged for tiny but positive contamination
        assert_eq!(
            threshold_by_contamination(&scores, 0.01)
                .iter()
                .filter(|&&b| b)
                .count(),
            1
        );
        assert!(threshold_by_contamination(&[], 0.5).is_empty());
    }
}
