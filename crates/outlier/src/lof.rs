//! Local Outlier Factor (Breunig et al., 2000).
//!
//! LOF compares each point's local reachability density with that of its
//! k nearest neighbors: points in sparser regions than their neighbors get
//! factors above 1. Included as an ensemble member and baseline scorer.
//!
//! `fit` runs the classic transductive LOF over the training rows (each row's
//! neighborhood excludes itself) and caches the per-row k-distance, local
//! reachability density and LOF score. `score` then returns the cached
//! transductive scores when handed the training matrix itself, and otherwise
//! evaluates queries in novelty mode against the fitted neighborhood
//! statistics (the sklearn/PyOD convention).

use grgad_linalg::ops::euclidean_distance;
use grgad_linalg::Matrix;
use serde::{Deserialize, Serialize};

use crate::OutlierDetector;

/// Fitted LOF state.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct LofModel {
    train: Matrix,
    k_distance: Vec<f32>,
    lrd: Vec<f32>,
    train_scores: Vec<f32>,
}

/// The LOF detector with a configurable neighborhood size.
#[derive(Clone, Debug)]
pub struct Lof {
    k: usize,
    model: Option<LofModel>,
}

impl Lof {
    /// Creates a LOF detector using `k` nearest neighbors (k ≥ 1).
    pub fn new(k: usize) -> Self {
        Self {
            k: k.max(1),
            model: None,
        }
    }

    /// The configured neighborhood size.
    pub fn k(&self) -> usize {
        self.k
    }

    fn model(&self) -> &LofModel {
        self.model.as_ref().expect("LOF: call fit() before score()")
    }
}

impl Default for Lof {
    fn default() -> Self {
        Self::new(10)
    }
}

impl OutlierDetector for Lof {
    fn fit(&mut self, data: &Matrix) {
        let m = data.rows();
        if m == 0 {
            self.model = Some(LofModel {
                train: data.clone(),
                k_distance: Vec::new(),
                lrd: Vec::new(),
                train_scores: Vec::new(),
            });
            return;
        }
        if m == 1 {
            self.model = Some(LofModel {
                train: data.clone(),
                k_distance: vec![0.0],
                lrd: vec![f32::INFINITY],
                train_scores: vec![1.0],
            });
            return;
        }
        let k = self.k.min(m - 1);

        // Pairwise distances and k-nearest neighbors (self excluded).
        let mut neighbors: Vec<Vec<(usize, f32)>> = Vec::with_capacity(m);
        for i in 0..m {
            let mut dists: Vec<(usize, f32)> = (0..m)
                .filter(|&j| j != i)
                .map(|j| (j, euclidean_distance(data.row(i), data.row(j))))
                .collect();
            dists.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
            dists.truncate(k);
            neighbors.push(dists);
        }
        // k-distance of each point = distance to its k-th neighbor.
        let k_distance: Vec<f32> = neighbors
            .iter()
            .map(|nbrs| nbrs.last().map_or(0.0, |&(_, d)| d))
            .collect();
        // Local reachability density.
        let lrd: Vec<f32> = (0..m)
            .map(|i| {
                let sum_reach: f32 = neighbors[i]
                    .iter()
                    .map(|&(j, d)| d.max(k_distance[j]))
                    .sum();
                if sum_reach <= 0.0 {
                    f32::INFINITY
                } else {
                    neighbors[i].len() as f32 / sum_reach
                }
            })
            .collect();
        // LOF score: average neighbor lrd over own lrd.
        let train_scores: Vec<f32> = (0..m)
            .map(|i| {
                if lrd[i].is_infinite() {
                    return 1.0;
                }
                let avg_nbr_lrd: f32 = neighbors[i]
                    .iter()
                    .map(|&(j, _)| if lrd[j].is_infinite() { lrd[i] } else { lrd[j] })
                    .sum::<f32>()
                    / neighbors[i].len() as f32;
                avg_nbr_lrd / lrd[i]
            })
            .collect();
        self.model = Some(LofModel {
            train: data.clone(),
            k_distance,
            lrd,
            train_scores,
        });
    }

    fn score(&self, data: &Matrix) -> Vec<f32> {
        let model = self.model();
        // Scoring the training matrix reproduces the transductive scores.
        if *data == model.train {
            return model.train_scores.clone();
        }
        let m = data.rows();
        if m == 0 {
            return Vec::new();
        }
        let train_m = model.train.rows();
        if train_m == 0 {
            return vec![0.0; m];
        }
        let k = self.k.min(train_m);
        // Novelty mode: each query's neighborhood is drawn from the training
        // rows (the query itself is not part of the reference set).
        (0..m)
            .map(|q| {
                let mut dists: Vec<(usize, f32)> = (0..train_m)
                    .map(|j| (j, euclidean_distance(data.row(q), model.train.row(j))))
                    .collect();
                dists.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
                dists.truncate(k);
                let sum_reach: f32 = dists.iter().map(|&(j, d)| d.max(model.k_distance[j])).sum();
                let lrd_q = if sum_reach <= 0.0 {
                    f32::INFINITY
                } else {
                    dists.len() as f32 / sum_reach
                };
                if lrd_q.is_infinite() {
                    return 1.0;
                }
                let avg_nbr_lrd: f32 = dists
                    .iter()
                    .map(|&(j, _)| {
                        if model.lrd[j].is_infinite() {
                            lrd_q
                        } else {
                            model.lrd[j]
                        }
                    })
                    .sum::<f32>()
                    / dists.len() as f32;
                avg_nbr_lrd / lrd_q
            })
            .collect()
    }

    fn save_state(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("k".to_string(), self.k.to_value()),
            ("model".to_string(), self.model().to_value()),
        ])
    }

    fn load_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        // `k` shapes the novelty-mode neighborhoods, so it is part of the
        // fitted state: restoring a snapshot into a detector constructed with
        // a different `k` must reproduce the original scores, not mix models.
        self.k = usize::from_value(state.field("k")?)?.max(1);
        self.model = Some(LofModel::from_value(state.field("model")?)?);
        Ok(())
    }

    fn name(&self) -> &'static str {
        "LOF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{
        assert_detects_outliers, assert_empty_fit_scores_zero, assert_fit_score_contract,
    };

    #[test]
    fn detects_planted_outliers() {
        assert_detects_outliers(&mut Lof::new(5));
    }

    #[test]
    fn fit_score_contract_holds() {
        assert_fit_score_contract(&mut Lof::new(5));
        assert_empty_fit_scores_zero(&mut Lof::new(5));
    }

    #[test]
    fn uniform_cluster_scores_near_one() {
        // A regular grid: every point's density matches its neighbors'.
        let mut rows = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                rows.push(vec![i as f32, j as f32]);
            }
        }
        let data = Matrix::from_vec(25, 2, rows.into_iter().flatten().collect());
        let scores = Lof::new(4).fit_score(&data);
        for &s in &scores {
            assert!(
                (0.5..2.0).contains(&s),
                "grid LOF should be near 1, got {s}"
            );
        }
    }

    #[test]
    fn novelty_query_in_sparse_region_scores_high() {
        let mut rows = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                rows.push(vec![i as f32, j as f32]);
            }
        }
        let data = Matrix::from_vec(25, 2, rows.into_iter().flatten().collect());
        let mut detector = Lof::new(4);
        detector.fit(&data);
        let scores = detector.score(&Matrix::from_rows(&[&[2.0, 2.0], &[40.0, 40.0]]));
        assert!(scores[1] > scores[0], "far query should out-score central");
        assert!(scores[1] > 2.0);
    }

    #[test]
    fn handles_tiny_inputs() {
        assert!(Lof::new(3).fit_score(&Matrix::zeros(0, 2)).is_empty());
        assert_eq!(Lof::new(3).fit_score(&Matrix::zeros(1, 2)), vec![1.0]);
        // duplicated points: no NaNs/inf
        let dup = Matrix::full(4, 2, 1.0);
        let scores = Lof::new(2).fit_score(&dup);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn snapshot_restores_k_into_differently_configured_detector() {
        let (data, _) = crate::test_support::cluster_with_outliers();
        let mut original = Lof::new(7);
        original.fit(&data);
        let unseen = Matrix::from_rows(&[&[0.5, 0.5], &[8.0, 8.0]]);
        let expected = original.score(&unseen);

        let mut other = Lof::new(2); // different k — must be overwritten
        other.load_state(&original.save_state()).unwrap();
        assert_eq!(other.k(), 7);
        assert_eq!(other.score(&unseen), expected);
    }

    #[test]
    fn k_is_clamped() {
        assert_eq!(Lof::new(0).k(), 1);
        // k larger than sample size still works
        let data = Matrix::from_rows(&[&[0.0], &[1.0], &[10.0]]);
        let scores = Lof::new(50).fit_score(&data);
        assert_eq!(scores.len(), 3);
        assert!(scores.iter().all(|s| s.is_finite()));
    }
}
