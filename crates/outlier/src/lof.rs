//! Local Outlier Factor (Breunig et al., 2000).
//!
//! LOF compares each point's local reachability density with that of its
//! k nearest neighbors: points in sparser regions than their neighbors get
//! factors above 1. Included as an ensemble member and baseline scorer.

use grgad_linalg::ops::euclidean_distance;
use grgad_linalg::Matrix;

use crate::OutlierDetector;

/// The LOF detector with a configurable neighborhood size.
#[derive(Clone, Copy, Debug)]
pub struct Lof {
    k: usize,
}

impl Lof {
    /// Creates a LOF detector using `k` nearest neighbors (k ≥ 1).
    pub fn new(k: usize) -> Self {
        Self { k: k.max(1) }
    }

    /// The configured neighborhood size.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl Default for Lof {
    fn default() -> Self {
        Self::new(10)
    }
}

impl OutlierDetector for Lof {
    fn fit_score(&self, data: &Matrix) -> Vec<f32> {
        let m = data.rows();
        if m == 0 {
            return Vec::new();
        }
        if m == 1 {
            return vec![1.0];
        }
        let k = self.k.min(m - 1);

        // Pairwise distances and k-nearest neighbors.
        let mut neighbors: Vec<Vec<(usize, f32)>> = Vec::with_capacity(m);
        for i in 0..m {
            let mut dists: Vec<(usize, f32)> = (0..m)
                .filter(|&j| j != i)
                .map(|j| (j, euclidean_distance(data.row(i), data.row(j))))
                .collect();
            dists.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
            dists.truncate(k);
            neighbors.push(dists);
        }
        // k-distance of each point = distance to its k-th neighbor.
        let k_distance: Vec<f32> = neighbors
            .iter()
            .map(|nbrs| nbrs.last().map_or(0.0, |&(_, d)| d))
            .collect();
        // Local reachability density.
        let lrd: Vec<f32> = (0..m)
            .map(|i| {
                let sum_reach: f32 = neighbors[i]
                    .iter()
                    .map(|&(j, d)| d.max(k_distance[j]))
                    .sum();
                if sum_reach <= 0.0 {
                    f32::INFINITY
                } else {
                    neighbors[i].len() as f32 / sum_reach
                }
            })
            .collect();
        // LOF score: average neighbor lrd over own lrd.
        (0..m)
            .map(|i| {
                if lrd[i].is_infinite() {
                    return 1.0;
                }
                let avg_nbr_lrd: f32 = neighbors[i]
                    .iter()
                    .map(|&(j, _)| if lrd[j].is_infinite() { lrd[i] } else { lrd[j] })
                    .sum::<f32>()
                    / neighbors[i].len() as f32;
                avg_nbr_lrd / lrd[i]
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "LOF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::assert_detects_outliers;

    #[test]
    fn detects_planted_outliers() {
        assert_detects_outliers(&Lof::new(5));
    }

    #[test]
    fn uniform_cluster_scores_near_one() {
        // A regular grid: every point's density matches its neighbors'.
        let mut rows = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                rows.push(vec![i as f32, j as f32]);
            }
        }
        let data = Matrix::from_vec(25, 2, rows.into_iter().flatten().collect());
        let scores = Lof::new(4).fit_score(&data);
        for &s in &scores {
            assert!(
                (0.5..2.0).contains(&s),
                "grid LOF should be near 1, got {s}"
            );
        }
    }

    #[test]
    fn handles_tiny_inputs() {
        assert!(Lof::new(3).fit_score(&Matrix::zeros(0, 2)).is_empty());
        assert_eq!(Lof::new(3).fit_score(&Matrix::zeros(1, 2)), vec![1.0]);
        // duplicated points: no NaNs/inf
        let dup = Matrix::full(4, 2, 1.0);
        let scores = Lof::new(2).fit_score(&dup);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn k_is_clamped() {
        assert_eq!(Lof::new(0).k(), 1);
        // k larger than sample size still works
        let data = Matrix::from_rows(&[&[0.0], &[1.0], &[10.0]]);
        let scores = Lof::new(50).fit_score(&data);
        assert_eq!(scores.len(), 3);
        assert!(scores.iter().all(|s| s.is_finite()));
    }
}
