//! Local Outlier Factor (Breunig et al., 2000).
//!
//! LOF compares each point's local reachability density with that of its
//! k nearest neighbors: points in sparser regions than their neighbors get
//! factors above 1. Included as an ensemble member and baseline scorer.
//!
//! `fit` runs the classic transductive LOF over the training rows (each row's
//! neighborhood excludes itself) and caches the per-row k-distance, local
//! reachability density and LOF score. `score` then returns the cached
//! transductive scores when handed the training matrix itself, and otherwise
//! evaluates queries in novelty mode against the fitted neighborhood
//! statistics (the sklearn/PyOD convention).

use grgad_linalg::ops::euclidean_distance;
use grgad_linalg::Matrix;
use serde::{Deserialize, Serialize};

use crate::OutlierDetector;

/// Fitted LOF state.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct LofModel {
    train: Matrix,
    k_distance: Vec<f32>,
    lrd: Vec<f32>,
    train_scores: Vec<f32>,
}

/// The LOF detector with a configurable neighborhood size.
#[derive(Clone, Debug)]
pub struct Lof {
    k: usize,
    model: Option<LofModel>,
}

impl Lof {
    /// Creates a LOF detector using `k` nearest neighbors (k ≥ 1).
    pub fn new(k: usize) -> Self {
        Self {
            k: k.max(1),
            model: None,
        }
    }

    /// The configured neighborhood size.
    pub fn k(&self) -> usize {
        self.k
    }

    fn model(&self) -> &LofModel {
        self.model.as_ref().expect("LOF: call fit() before score()")
    }
}

/// Bit-exact matrix identity: same shape and every element has the same IEEE
/// bit pattern. Unlike `PartialEq`, treats NaN as equal to an identical NaN,
/// so a NaN-carrying training matrix still matches itself.
fn same_matrix_bits(a: &Matrix, b: &Matrix) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

impl Default for Lof {
    fn default() -> Self {
        Self::new(10)
    }
}

impl OutlierDetector for Lof {
    fn fit(&mut self, data: &Matrix) {
        let m = data.rows();
        if m == 0 {
            self.model = Some(LofModel {
                train: data.clone(),
                k_distance: Vec::new(),
                lrd: Vec::new(),
                train_scores: Vec::new(),
            });
            return;
        }
        if m == 1 {
            self.model = Some(LofModel {
                train: data.clone(),
                k_distance: vec![0.0],
                lrd: vec![f32::INFINITY],
                train_scores: vec![1.0],
            });
            return;
        }
        // Neighborhood cap invariant: a point's neighborhood is drawn from
        // *all available reference points*. In transductive fit the point
        // itself is excluded, leaving `m - 1` references; in novelty scoring
        // (see `score`) the query is not part of the training set, so all
        // `train_m` rows are available. Both caps express the same rule.
        let k = self.k.min(m - 1);

        // Pairwise distances and k-nearest neighbors (self excluded).
        // Row-parallel: each point's neighbor list is computed independently
        // and written to its own index, so the result is thread-count
        // invariant.
        let neighbors: Vec<Vec<(usize, f32)>> = grgad_parallel::par_map_range(m, |i| {
            let mut dists: Vec<(usize, f32)> = (0..m)
                .filter(|&j| j != i)
                .map(|j| (j, euclidean_distance(data.row(i), data.row(j))))
                .collect();
            // `total_cmp` is NaN-robust (required: the std sort panics on
            // comparators that are not total orders) and identical to the
            // old `partial_cmp` ordering for the non-negative, NaN-free
            // distances of well-formed embeddings.
            dists.sort_by(|a, b| a.1.total_cmp(&b.1));
            dists.truncate(k);
            dists
        });
        // k-distance of each point = distance to its k-th neighbor.
        let k_distance: Vec<f32> = neighbors
            .iter()
            .map(|nbrs| nbrs.last().map_or(0.0, |&(_, d)| d))
            .collect();
        // Local reachability density (per-point, reads only k_distance).
        let lrd: Vec<f32> = grgad_parallel::par_map_indexed_min(&neighbors, 512, |_, nbrs| {
            let sum_reach: f32 = nbrs.iter().map(|&(j, d)| d.max(k_distance[j])).sum();
            if sum_reach <= 0.0 {
                f32::INFINITY
            } else {
                nbrs.len() as f32 / sum_reach
            }
        });
        // LOF score: average neighbor lrd over own lrd.
        let train_scores: Vec<f32> =
            grgad_parallel::par_map_indexed_min(&neighbors, 512, |i, nbrs| {
                if lrd[i].is_infinite() {
                    return 1.0;
                }
                let avg_nbr_lrd: f32 = nbrs
                    .iter()
                    .map(|&(j, _)| if lrd[j].is_infinite() { lrd[i] } else { lrd[j] })
                    .sum::<f32>()
                    / nbrs.len() as f32;
                avg_nbr_lrd / lrd[i]
            });
        self.model = Some(LofModel {
            train: data.clone(),
            k_distance,
            lrd,
            train_scores,
        });
    }

    fn score(&self, data: &Matrix) -> Vec<f32> {
        let model = self.model();
        // Scoring the training matrix reproduces the transductive scores.
        // The comparison is a bit-exact fingerprint (`f32::to_bits`) rather
        // than `PartialEq` on f32: with IEEE `==`, a single NaN anywhere in
        // the training embedding makes `data == train` false even for the
        // training matrix itself, silently rerouting training rows into
        // novelty mode where each row finds *itself* at distance 0 — which
        // corrupts the transductive scores.
        if same_matrix_bits(data, &model.train) {
            return model.train_scores.clone();
        }
        let m = data.rows();
        if m == 0 {
            return Vec::new();
        }
        let train_m = model.train.rows();
        if train_m == 0 {
            return vec![0.0; m];
        }
        // Neighborhood cap invariant (mirrors `fit`): all available reference
        // points. The query is not a training row, so all `train_m` rows are
        // available — the fit-side cap `k.min(m - 1)` and this `k.min(train_m)`
        // are the same "everything except the point itself" rule.
        let k = self.k.min(train_m);
        // Novelty mode: each query's neighborhood is drawn from the training
        // rows (the query itself is not part of the reference set). Queries
        // are independent, so they are scored row-parallel.
        grgad_parallel::par_map_range(m, |q| {
            let mut dists: Vec<(usize, f32)> = (0..train_m)
                .map(|j| (j, euclidean_distance(data.row(q), model.train.row(j))))
                .collect();
            dists.sort_by(|a, b| a.1.total_cmp(&b.1));
            dists.truncate(k);
            let sum_reach: f32 = dists.iter().map(|&(j, d)| d.max(model.k_distance[j])).sum();
            let lrd_q = if sum_reach <= 0.0 {
                f32::INFINITY
            } else {
                dists.len() as f32 / sum_reach
            };
            if lrd_q.is_infinite() {
                return 1.0;
            }
            let avg_nbr_lrd: f32 = dists
                .iter()
                .map(|&(j, _)| {
                    if model.lrd[j].is_infinite() {
                        lrd_q
                    } else {
                        model.lrd[j]
                    }
                })
                .sum::<f32>()
                / dists.len() as f32;
            avg_nbr_lrd / lrd_q
        })
    }

    fn save_state(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("k".to_string(), self.k.to_value()),
            ("model".to_string(), self.model().to_value()),
        ])
    }

    fn load_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        // `k` shapes the novelty-mode neighborhoods, so it is part of the
        // fitted state: restoring a snapshot into a detector constructed with
        // a different `k` must reproduce the original scores, not mix models.
        self.k = usize::from_value(state.field("k")?)?.max(1);
        self.model = Some(LofModel::from_value(state.field("model")?)?);
        Ok(())
    }

    fn name(&self) -> &'static str {
        "LOF"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{
        assert_detects_outliers, assert_empty_fit_scores_zero, assert_fit_score_contract,
    };

    #[test]
    fn detects_planted_outliers() {
        assert_detects_outliers(&mut Lof::new(5));
    }

    #[test]
    fn fit_score_contract_holds() {
        assert_fit_score_contract(&mut Lof::new(5));
        assert_empty_fit_scores_zero(&mut Lof::new(5));
    }

    #[test]
    fn uniform_cluster_scores_near_one() {
        // A regular grid: every point's density matches its neighbors'.
        let mut rows = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                rows.push(vec![i as f32, j as f32]);
            }
        }
        let data = Matrix::from_vec(25, 2, rows.into_iter().flatten().collect());
        let scores = Lof::new(4).fit_score(&data);
        for &s in &scores {
            assert!(
                (0.5..2.0).contains(&s),
                "grid LOF should be near 1, got {s}"
            );
        }
    }

    #[test]
    fn novelty_query_in_sparse_region_scores_high() {
        let mut rows = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                rows.push(vec![i as f32, j as f32]);
            }
        }
        let data = Matrix::from_vec(25, 2, rows.into_iter().flatten().collect());
        let mut detector = Lof::new(4);
        detector.fit(&data);
        let scores = detector.score(&Matrix::from_rows(&[&[2.0, 2.0], &[40.0, 40.0]]));
        assert!(scores[1] > scores[0], "far query should out-score central");
        assert!(scores[1] > 2.0);
    }

    #[test]
    fn handles_tiny_inputs() {
        assert!(Lof::new(3).fit_score(&Matrix::zeros(0, 2)).is_empty());
        assert_eq!(Lof::new(3).fit_score(&Matrix::zeros(1, 2)), vec![1.0]);
        // duplicated points: no NaNs/inf
        let dup = Matrix::full(4, 2, 1.0);
        let scores = Lof::new(2).fit_score(&dup);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn snapshot_restores_k_into_differently_configured_detector() {
        let (data, _) = crate::test_support::cluster_with_outliers();
        let mut original = Lof::new(7);
        original.fit(&data);
        let unseen = Matrix::from_rows(&[&[0.5, 0.5], &[8.0, 8.0]]);
        let expected = original.score(&unseen);

        let mut other = Lof::new(2); // different k — must be overwritten
        other.load_state(&original.save_state()).unwrap();
        assert_eq!(other.k(), 7);
        assert_eq!(other.score(&unseen), expected);
    }

    /// Regression: a NaN anywhere in the training embedding must not disable
    /// the train-matrix gate. With the old `*data == model.train` f32
    /// comparison the gate failed on NaN, training rows were rescored in
    /// novelty mode (each finding itself at distance 0) and the transductive
    /// scores silently diverged from `fit_score`.
    #[test]
    fn nan_training_row_still_hits_transductive_gate() {
        let (mut data, _) = crate::test_support::cluster_with_outliers();
        data[(3, 1)] = f32::NAN;
        let mut detector = Lof::new(5);
        let legacy = detector.fit_score(&data);
        let rescored = detector.score(&data);
        assert_eq!(
            legacy.len(),
            rescored.len(),
            "scores must cover every training row"
        );
        for (i, (a, b)) in legacy.iter().zip(&rescored).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "row {i}: score(train) must reproduce fit_score bit-for-bit, got {a} vs {b}"
            );
        }
    }

    #[test]
    fn novelty_cap_matches_fit_cap_semantics() {
        // With 3 training rows and k = 50, fit caps at m - 1 = 2 references;
        // a novelty query may use all 3 training rows. Both are "everything
        // available", and neither path may panic or produce non-finite spam.
        let data = Matrix::from_rows(&[&[0.0], &[1.0], &[10.0]]);
        let mut detector = Lof::new(50);
        detector.fit(&data);
        let novelty = detector.score(&Matrix::from_rows(&[&[0.5], &[100.0]]));
        assert_eq!(novelty.len(), 2);
        assert!(novelty.iter().all(|s| s.is_finite()));
        assert!(novelty[1] > novelty[0]);
    }

    #[test]
    fn k_is_clamped() {
        assert_eq!(Lof::new(0).k(), 1);
        // k larger than sample size still works
        let data = Matrix::from_rows(&[&[0.0], &[1.0], &[10.0]]);
        let scores = Lof::new(50).fit_score(&data);
        assert_eq!(scores.len(), 3);
        assert!(scores.iter().all(|s| s.is_finite()));
    }
}
