//! A simple Gaussian-tail outlier scorer: the sum of squared per-dimension
//! z-scores. Used as a cheap baseline and as a member of the SUOD-style
//! ensemble.
//!
//! `fit` records the per-column mean and standard deviation of the training
//! data; `score` evaluates any observation against those moments.

use grgad_linalg::stats::{mean, std_dev};
use grgad_linalg::Matrix;
use serde::{Deserialize, Serialize};

use crate::OutlierDetector;

/// Fitted per-column moments.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct ZScoreModel {
    means: Vec<f32>,
    stds: Vec<f32>,
}

/// Sum-of-squared-z-scores detector.
#[derive(Clone, Debug, Default)]
pub struct ZScore {
    model: Option<ZScoreModel>,
}

impl ZScore {
    /// Creates an unfitted z-score detector.
    pub fn new() -> Self {
        Self::default()
    }

    fn model(&self) -> &ZScoreModel {
        self.model
            .as_ref()
            .expect("ZScore: call fit() before score()")
    }
}

impl OutlierDetector for ZScore {
    fn fit(&mut self, data: &Matrix) {
        let (m, d) = data.shape();
        let mut means = Vec::with_capacity(d);
        let mut stds = Vec::with_capacity(d);
        for j in 0..d {
            let col: Vec<f32> = (0..m).map(|i| data[(i, j)]).collect();
            means.push(mean(&col));
            stds.push(std_dev(&col));
        }
        self.model = Some(ZScoreModel { means, stds });
    }

    fn score(&self, data: &Matrix) -> Vec<f32> {
        let model = self.model();
        let m = data.rows();
        if m == 0 {
            return Vec::new();
        }
        if model.means.is_empty() {
            return vec![0.0; m];
        }
        assert_eq!(
            data.cols(),
            model.means.len(),
            "ZScore: score data has {} columns, model was fitted on {}",
            data.cols(),
            model.means.len()
        );
        let mut scores = vec![0.0_f32; m];
        for (j, (&mu, &sd)) in model.means.iter().zip(&model.stds).enumerate() {
            // Zero-variance (constant) or degenerate (empty/NaN-std) training
            // column: skip it entirely (contribution 0). Dividing by
            // `sd == 0` would turn every deviating observation into an
            // `inf`/`NaN` score that poisons downstream ensemble averaging
            // before `adaptive_threshold` gets a chance to filter it.
            let usable = sd > 0.0;
            if !usable {
                continue;
            }
            for (i, slot) in scores.iter_mut().enumerate() {
                let z = (data[(i, j)] - mu) / sd;
                *slot += z * z;
            }
        }
        scores
    }

    fn save_state(&self) -> serde::Value {
        self.model().to_value()
    }

    fn load_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        self.model = Some(ZScoreModel::from_value(state)?);
        Ok(())
    }

    fn name(&self) -> &'static str {
        "ZScore"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{
        assert_detects_outliers, assert_empty_fit_scores_zero, assert_fit_score_contract,
    };

    #[test]
    fn detects_planted_outliers() {
        assert_detects_outliers(&mut ZScore::new());
    }

    #[test]
    fn fit_score_contract_holds() {
        assert_fit_score_contract(&mut ZScore::new());
        assert_empty_fit_scores_zero(&mut ZScore::new());
    }

    #[test]
    fn constant_columns_contribute_nothing() {
        let data = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 10.0]]);
        let scores = ZScore::new().fit_score(&data);
        assert!(scores[2] > scores[0]);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    /// Regression: a zero-variance training column must stay silent even for
    /// *unseen* observations that deviate from the constant — the old
    /// `(x - mu) / 0` produced `inf` scores in novelty mode.
    #[test]
    fn constant_column_stays_finite_on_deviating_novelty_rows() {
        let train = Matrix::from_rows(&[&[2.0, 0.0], &[2.0, 1.0], &[2.0, 2.0], &[2.0, 3.0]]);
        let mut detector = ZScore::new();
        detector.fit(&train);
        // First column deviates from the constant 2.0 — would divide by 0.
        let scores = detector.score(&Matrix::from_rows(&[&[99.0, 1.5], &[2.0, 50.0]]));
        assert!(
            scores.iter().all(|s| s.is_finite()),
            "zero-variance column produced non-finite scores: {scores:?}"
        );
        // The informative second column still separates the rows.
        assert!(scores[1] > scores[0]);
    }

    #[test]
    fn unseen_far_point_scores_highest() {
        let data = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0], &[3.0]]);
        let mut detector = ZScore::new();
        detector.fit(&data);
        let train_max = detector.score(&data).into_iter().fold(f32::MIN, f32::max);
        let unseen = detector.score(&Matrix::from_rows(&[&[50.0]]));
        assert!(unseen[0] > train_max);
    }

    #[test]
    fn empty_input() {
        assert!(ZScore::new().fit_score(&Matrix::zeros(0, 2)).is_empty());
        assert_eq!(ZScore::new().name(), "ZScore");
    }
}
