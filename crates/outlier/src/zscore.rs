//! A simple Gaussian-tail outlier scorer: the sum of squared per-dimension
//! z-scores. Used as a cheap baseline and as a member of the SUOD-style
//! ensemble.

use grgad_linalg::stats::{mean, std_dev};
use grgad_linalg::Matrix;

use crate::OutlierDetector;

/// Sum-of-squared-z-scores detector.
#[derive(Clone, Copy, Debug, Default)]
pub struct ZScore;

impl ZScore {
    /// Creates a new z-score detector.
    pub fn new() -> Self {
        Self
    }
}

impl OutlierDetector for ZScore {
    fn fit_score(&self, data: &Matrix) -> Vec<f32> {
        let (m, d) = data.shape();
        if m == 0 {
            return Vec::new();
        }
        let mut scores = vec![0.0_f32; m];
        for j in 0..d {
            let col: Vec<f32> = (0..m).map(|i| data[(i, j)]).collect();
            let mu = mean(&col);
            let sd = std_dev(&col);
            if sd <= 0.0 {
                continue;
            }
            for (i, &x) in col.iter().enumerate() {
                let z = (x - mu) / sd;
                scores[i] += z * z;
            }
        }
        scores
    }

    fn name(&self) -> &'static str {
        "ZScore"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::assert_detects_outliers;

    #[test]
    fn detects_planted_outliers() {
        assert_detects_outliers(&ZScore::new());
    }

    #[test]
    fn constant_columns_contribute_nothing() {
        let data = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 10.0]]);
        let scores = ZScore::new().fit_score(&data);
        assert!(scores[2] > scores[0]);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn empty_input() {
        assert!(ZScore::new().fit_score(&Matrix::zeros(0, 2)).is_empty());
        assert_eq!(ZScore::new().name(), "ZScore");
    }
}
