//! Isolation Forest (Liu et al., 2008).
//!
//! Anomalies are isolated by fewer random axis-aligned splits than inliers,
//! so their average path length across an ensemble of random isolation trees
//! is shorter. The standard anomaly score `2^(-E[h(x)] / c(n))` is returned.
//!
//! `fit` grows the forest on the training rows; `score` traverses the stored
//! trees for any observation, so unseen rows are scored without regrowing
//! the forest. The trees serialize to JSON for model persistence.

use grgad_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize as _, Serialize as _};

use crate::OutlierDetector;

/// Isolation-forest detector.
#[derive(Clone, Debug)]
pub struct IsolationForest {
    n_trees: usize,
    sample_size: usize,
    seed: u64,
    model: Option<ForestModel>,
}

#[derive(Clone, Debug)]
struct ForestModel {
    trees: Vec<Node>,
    /// Normalization constant `c(sample_size)` of the fitted forest.
    c: f32,
}

impl IsolationForest {
    /// Creates a forest with `n_trees` trees, each grown on a subsample of
    /// `sample_size` rows.
    pub fn new(n_trees: usize, sample_size: usize, seed: u64) -> Self {
        Self {
            n_trees: n_trees.max(1),
            sample_size: sample_size.max(2),
            seed,
            model: None,
        }
    }

    fn model(&self) -> &ForestModel {
        self.model
            .as_ref()
            .expect("IsolationForest: call fit() before score()")
    }
}

impl Default for IsolationForest {
    fn default() -> Self {
        Self::new(100, 64, 0)
    }
}

#[derive(Clone, Debug)]
enum Node {
    Leaf {
        size: usize,
    },
    Split {
        dim: usize,
        threshold: f32,
        left: Box<Node>,
        right: Box<Node>,
    },
}

impl Node {
    fn to_value(&self) -> serde::Value {
        match self {
            Node::Leaf { size } => {
                serde::Value::Map(vec![("leaf".to_string(), serde::Serialize::to_value(size))])
            }
            Node::Split {
                dim,
                threshold,
                left,
                right,
            } => serde::Value::Map(vec![
                ("dim".to_string(), serde::Serialize::to_value(dim)),
                (
                    "threshold".to_string(),
                    serde::Serialize::to_value(threshold),
                ),
                ("left".to_string(), left.to_value()),
                ("right".to_string(), right.to_value()),
            ]),
        }
    }

    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        if let Ok(size) = value.field("leaf") {
            return Ok(Node::Leaf {
                size: usize::from_value(size)?,
            });
        }
        Ok(Node::Split {
            dim: usize::from_value(value.field("dim")?)?,
            threshold: f32::from_value(value.field("threshold")?)?,
            left: Box::new(Node::from_value(value.field("left")?)?),
            right: Box::new(Node::from_value(value.field("right")?)?),
        })
    }
}

fn build_tree(
    data: &Matrix,
    rows: &[usize],
    depth: usize,
    max_depth: usize,
    rng: &mut StdRng,
) -> Node {
    if rows.len() <= 1 || depth >= max_depth {
        return Node::Leaf { size: rows.len() };
    }
    let d = data.cols();
    if d == 0 {
        return Node::Leaf { size: rows.len() };
    }
    // Pick a random dimension with spread; give up after a few attempts.
    for _ in 0..8 {
        let dim = rng.gen_range(0..d);
        let lo = rows
            .iter()
            .map(|&r| data[(r, dim)])
            .fold(f32::INFINITY, f32::min);
        let hi = rows
            .iter()
            .map(|&r| data[(r, dim)])
            .fold(f32::NEG_INFINITY, f32::max);
        if hi <= lo {
            continue;
        }
        let threshold = rng.gen_range(lo..hi);
        let (left_rows, right_rows): (Vec<usize>, Vec<usize>) =
            rows.iter().partition(|&&r| data[(r, dim)] < threshold);
        if left_rows.is_empty() || right_rows.is_empty() {
            continue;
        }
        return Node::Split {
            dim,
            threshold,
            left: Box::new(build_tree(data, &left_rows, depth + 1, max_depth, rng)),
            right: Box::new(build_tree(data, &right_rows, depth + 1, max_depth, rng)),
        };
    }
    Node::Leaf { size: rows.len() }
}

fn path_length(node: &Node, point: &[f32], depth: f32) -> f32 {
    match node {
        Node::Leaf { size } => depth + average_path_length(*size),
        Node::Split {
            dim,
            threshold,
            left,
            right,
        } => {
            if point[*dim] < *threshold {
                path_length(left, point, depth + 1.0)
            } else {
                path_length(right, point, depth + 1.0)
            }
        }
    }
}

/// Average path length of an unsuccessful BST search in a tree of `n` items —
/// the normalization constant `c(n) = 2·H(n−1) − 2(n−1)/n` from the original
/// paper, with the harmonic number approximated as `H(i) ≈ ln(i) + γ`
/// (Euler–Mascheroni constant).
fn average_path_length(n: usize) -> f32 {
    /// Euler–Mascheroni constant γ.
    const EULER_GAMMA: f32 = 0.577_215_7;
    if n <= 1 {
        return 0.0;
    }
    let n = n as f32;
    2.0 * ((n - 1.0).ln() + EULER_GAMMA) - 2.0 * (n - 1.0) / n
}

impl OutlierDetector for IsolationForest {
    fn fit(&mut self, data: &Matrix) {
        let m = data.rows();
        if m == 0 {
            self.model = Some(ForestModel {
                trees: Vec::new(),
                c: 1.0,
            });
            return;
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let sample_size = self.sample_size.min(m);
        let max_depth = (sample_size as f32).log2().ceil().max(1.0) as usize;

        // Each tree owns an independent RNG whose seed is drawn sequentially
        // from the master stream, so tree t's randomness depends only on
        // (master seed, t) — never on which worker thread grows it. Trees are
        // then grown in parallel and written to index-addressed slots,
        // keeping the forest identical at any thread count.
        use rand::RngCore;
        let tree_seeds: Vec<u64> = (0..self.n_trees).map(|_| rng.next_u64()).collect();
        let trees: Vec<Node> = grgad_parallel::par_map_indexed(&tree_seeds, |_, &tree_seed| {
            let mut tree_rng = StdRng::seed_from_u64(tree_seed);
            let rows: Vec<usize> = (0..sample_size).map(|_| tree_rng.gen_range(0..m)).collect();
            build_tree(data, &rows, 0, max_depth, &mut tree_rng)
        });
        let c = average_path_length(sample_size).max(1e-6);
        self.model = Some(ForestModel { trees, c });
    }

    fn score(&self, data: &Matrix) -> Vec<f32> {
        let model = self.model();
        let m = data.rows();
        if m == 0 {
            return Vec::new();
        }
        if model.trees.is_empty() {
            return vec![0.0; m];
        }
        // Row-parallel scoring: each observation traverses the stored trees
        // in forest order and reduces its own path lengths sequentially, so
        // no floating-point reduction crosses a thread boundary.
        grgad_parallel::par_map_range_min(m, 32, |i| {
            let avg: f32 = model
                .trees
                .iter()
                .map(|t| path_length(t, data.row(i), 0.0))
                .sum::<f32>()
                / model.trees.len() as f32;
            2.0_f32.powf(-avg / model.c)
        })
    }

    fn save_state(&self) -> serde::Value {
        let model = self.model();
        serde::Value::Map(vec![
            (
                "trees".to_string(),
                serde::Value::Seq(model.trees.iter().map(Node::to_value).collect()),
            ),
            ("c".to_string(), model.c.to_value()),
        ])
    }

    fn load_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        let trees = match state.field("trees")? {
            serde::Value::Seq(items) => items
                .iter()
                .map(Node::from_value)
                .collect::<Result<Vec<Node>, serde::Error>>()?,
            _ => return Err(serde::Error::custom("IsolationForest: expected tree list")),
        };
        let c = f32::from_value(state.field("c")?)?;
        self.model = Some(ForestModel { trees, c });
        Ok(())
    }

    fn name(&self) -> &'static str {
        "IsolationForest"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{
        assert_detects_outliers, assert_empty_fit_scores_zero, assert_fit_score_contract,
    };

    #[test]
    fn detects_planted_outliers() {
        assert_detects_outliers(&mut IsolationForest::new(100, 32, 7));
    }

    #[test]
    fn fit_score_contract_holds() {
        assert_fit_score_contract(&mut IsolationForest::new(50, 32, 3));
        assert_empty_fit_scores_zero(&mut IsolationForest::default());
    }

    #[test]
    fn scores_bounded_between_zero_and_one() {
        let (data, _) = crate::test_support::cluster_with_outliers();
        let scores = IsolationForest::default().fit_score(&data);
        assert!(scores.iter().all(|&s| (0.0..=1.0).contains(&s)));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (data, _) = crate::test_support::cluster_with_outliers();
        let a = IsolationForest::new(50, 32, 3).fit_score(&data);
        let b = IsolationForest::new(50, 32, 3).fit_score(&data);
        assert_eq!(a, b);
    }

    #[test]
    fn unseen_rows_score_without_refitting() {
        let (data, _) = crate::test_support::cluster_with_outliers();
        let mut forest = IsolationForest::new(50, 32, 3);
        forest.fit(&data);
        let central = forest.score(&Matrix::from_rows(&[&[0.02, 0.02]]))[0];
        let distant = forest.score(&Matrix::from_rows(&[&[30.0, -30.0]]))[0];
        assert!(distant > central, "{distant} should exceed {central}");
    }

    #[test]
    fn handles_degenerate_inputs() {
        assert!(IsolationForest::default()
            .fit_score(&Matrix::zeros(0, 2))
            .is_empty());
        let constant = Matrix::full(10, 2, 3.0);
        let scores = IsolationForest::default().fit_score(&constant);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn average_path_length_monotone() {
        assert_eq!(average_path_length(1), 0.0);
        assert!(average_path_length(100) > average_path_length(10));
    }

    /// Golden values of `c(n) = 2·(ln(n−1) + γ) − 2(n−1)/n`: pins the
    /// normalization constant so refactors (like removing the obfuscated
    /// `E.ln() − 1` no-op term) cannot silently change the score scale.
    #[test]
    fn average_path_length_golden_values() {
        assert!(
            (average_path_length(2) - 0.1544).abs() < 1e-3,
            "c(2) = {}, expected ≈ 0.1544",
            average_path_length(2)
        );
        assert!(
            (average_path_length(256) - 10.244).abs() < 1e-2,
            "c(256) = {}, expected ≈ 10.244",
            average_path_length(256)
        );
    }
}
