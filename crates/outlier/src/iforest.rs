//! Isolation Forest (Liu et al., 2008).
//!
//! Anomalies are isolated by fewer random axis-aligned splits than inliers,
//! so their average path length across an ensemble of random isolation trees
//! is shorter. The standard anomaly score `2^(-E[h(x)] / c(n))` is returned.

use grgad_linalg::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::OutlierDetector;

/// Isolation-forest detector.
#[derive(Clone, Debug)]
pub struct IsolationForest {
    n_trees: usize,
    sample_size: usize,
    seed: u64,
}

impl IsolationForest {
    /// Creates a forest with `n_trees` trees, each grown on a subsample of
    /// `sample_size` rows.
    pub fn new(n_trees: usize, sample_size: usize, seed: u64) -> Self {
        Self {
            n_trees: n_trees.max(1),
            sample_size: sample_size.max(2),
            seed,
        }
    }
}

impl Default for IsolationForest {
    fn default() -> Self {
        Self::new(100, 64, 0)
    }
}

enum Node {
    Leaf {
        size: usize,
    },
    Split {
        dim: usize,
        threshold: f32,
        left: Box<Node>,
        right: Box<Node>,
    },
}

fn build_tree(
    data: &Matrix,
    rows: &[usize],
    depth: usize,
    max_depth: usize,
    rng: &mut StdRng,
) -> Node {
    if rows.len() <= 1 || depth >= max_depth {
        return Node::Leaf { size: rows.len() };
    }
    let d = data.cols();
    if d == 0 {
        return Node::Leaf { size: rows.len() };
    }
    // Pick a random dimension with spread; give up after a few attempts.
    for _ in 0..8 {
        let dim = rng.gen_range(0..d);
        let lo = rows
            .iter()
            .map(|&r| data[(r, dim)])
            .fold(f32::INFINITY, f32::min);
        let hi = rows
            .iter()
            .map(|&r| data[(r, dim)])
            .fold(f32::NEG_INFINITY, f32::max);
        if hi <= lo {
            continue;
        }
        let threshold = rng.gen_range(lo..hi);
        let (left_rows, right_rows): (Vec<usize>, Vec<usize>) =
            rows.iter().partition(|&&r| data[(r, dim)] < threshold);
        if left_rows.is_empty() || right_rows.is_empty() {
            continue;
        }
        return Node::Split {
            dim,
            threshold,
            left: Box::new(build_tree(data, &left_rows, depth + 1, max_depth, rng)),
            right: Box::new(build_tree(data, &right_rows, depth + 1, max_depth, rng)),
        };
    }
    Node::Leaf { size: rows.len() }
}

fn path_length(node: &Node, point: &[f32], depth: f32) -> f32 {
    match node {
        Node::Leaf { size } => depth + average_path_length(*size),
        Node::Split {
            dim,
            threshold,
            left,
            right,
        } => {
            if point[*dim] < *threshold {
                path_length(left, point, depth + 1.0)
            } else {
                path_length(right, point, depth + 1.0)
            }
        }
    }
}

/// Average path length of an unsuccessful BST search in a tree of `n` items —
/// the normalization constant `c(n)` from the original paper.
fn average_path_length(n: usize) -> f32 {
    if n <= 1 {
        return 0.0;
    }
    let n = n as f32;
    2.0 * ((n - 1.0).ln() + std::f32::consts::E.ln() - 1.0 + 0.577_215_7) - 2.0 * (n - 1.0) / n
}

impl OutlierDetector for IsolationForest {
    fn fit_score(&self, data: &Matrix) -> Vec<f32> {
        let m = data.rows();
        if m == 0 {
            return Vec::new();
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let sample_size = self.sample_size.min(m);
        let max_depth = (sample_size as f32).log2().ceil().max(1.0) as usize;

        let mut trees = Vec::with_capacity(self.n_trees);
        for _ in 0..self.n_trees {
            let rows: Vec<usize> = (0..sample_size).map(|_| rng.gen_range(0..m)).collect();
            trees.push(build_tree(data, &rows, 0, max_depth, &mut rng));
        }
        let c = average_path_length(sample_size).max(1e-6);
        (0..m)
            .map(|i| {
                let avg: f32 = trees
                    .iter()
                    .map(|t| path_length(t, data.row(i), 0.0))
                    .sum::<f32>()
                    / trees.len() as f32;
                2.0_f32.powf(-avg / c)
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "IsolationForest"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::assert_detects_outliers;

    #[test]
    fn detects_planted_outliers() {
        assert_detects_outliers(&IsolationForest::new(100, 32, 7));
    }

    #[test]
    fn scores_bounded_between_zero_and_one() {
        let (data, _) = crate::test_support::cluster_with_outliers();
        let scores = IsolationForest::default().fit_score(&data);
        assert!(scores.iter().all(|&s| (0.0..=1.0).contains(&s)));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (data, _) = crate::test_support::cluster_with_outliers();
        let a = IsolationForest::new(50, 32, 3).fit_score(&data);
        let b = IsolationForest::new(50, 32, 3).fit_score(&data);
        assert_eq!(a, b);
    }

    #[test]
    fn handles_degenerate_inputs() {
        assert!(IsolationForest::default()
            .fit_score(&Matrix::zeros(0, 2))
            .is_empty());
        let constant = Matrix::full(10, 2, 3.0);
        let scores = IsolationForest::default().fit_score(&constant);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn average_path_length_monotone() {
        assert_eq!(average_path_length(1), 0.0);
        assert!(average_path_length(100) > average_path_length(10));
    }
}
