//! ECOD: unsupervised outlier detection using empirical cumulative
//! distribution functions (Li et al., TKDE 2022).
//!
//! For every dimension the left- and right-tail empirical CDFs are estimated
//! from the training data; an observation's dimension-wise outlier score is
//! the negative log tail probability, aggregated across dimensions on the
//! left tail, the right tail, and a skewness-selected tail. The final score
//! is the maximum of the three aggregations — exactly the parameter-free
//! procedure of the paper's chosen detector.
//!
//! `fit` sorts each training column and records its skewness; `score` then
//! evaluates any observation against the stored ECDFs, so new rows can be
//! scored without refitting.

use grgad_linalg::stats::{ecdf, skewness};
use grgad_linalg::Matrix;
use serde::{Deserialize, Serialize};

use crate::OutlierDetector;

/// Per-dimension fitted state: the sorted training column and its skewness.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct EcodColumn {
    sorted: Vec<f32>,
    skew: f32,
}

/// Fitted ECOD state.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct EcodModel {
    columns: Vec<EcodColumn>,
    train_rows: usize,
}

/// The ECOD detector.
#[derive(Clone, Debug, Default)]
pub struct Ecod {
    model: Option<EcodModel>,
}

impl Ecod {
    /// Creates an unfitted ECOD detector.
    pub fn new() -> Self {
        Self::default()
    }

    fn model(&self) -> &EcodModel {
        self.model
            .as_ref()
            .expect("ECOD: call fit() before score()")
    }
}

impl OutlierDetector for Ecod {
    fn fit(&mut self, data: &Matrix) {
        let (m, d) = data.shape();
        // Column-parallel: every dimension's ECDF (sort + skewness) is
        // independent and lands in its own slot.
        let columns = grgad_parallel::par_map_range(d, |j| {
            let col: Vec<f32> = (0..m).map(|i| data[(i, j)]).collect();
            let skew = skewness(&col);
            // NaNs are dropped before sorting: they carry no distribution
            // information, and the `partition_point` binary searches in
            // `ecdf`/`ecdf_right` require a cleanly ordered array — a
            // negative NaN would sort to the front under `total_cmp` and
            // silently corrupt every tail probability of the column. An
            // all-NaN column degenerates to the empty-ECDF neutral value.
            let mut sorted: Vec<f32> = col.into_iter().filter(|v| !v.is_nan()).collect();
            sorted.sort_by(f32::total_cmp);
            EcodColumn { sorted, skew }
        });
        self.model = Some(EcodModel {
            columns,
            train_rows: m,
        });
    }

    fn score(&self, data: &Matrix) -> Vec<f32> {
        let model = self.model();
        let m = data.rows();
        if m == 0 {
            return Vec::new();
        }
        if model.train_rows == 0 || model.columns.is_empty() {
            return vec![0.0; m];
        }
        assert_eq!(
            data.cols(),
            model.columns.len(),
            "ECOD: score data has {} columns, model was fitted on {}",
            data.cols(),
            model.columns.len()
        );
        // Row-parallel scoring. Each row accumulates its per-dimension tail
        // scores over columns in index order — exactly the order the former
        // column-outer loop added them into that row's slot — so the result
        // is bit-for-bit identical to the serial version at any thread count.
        grgad_parallel::par_map_range_min(m, 64, |i| {
            let mut o_left = 0.0_f32;
            let mut o_right = 0.0_f32;
            let mut o_auto = 0.0_f32;
            for (j, column) in model.columns.iter().enumerate() {
                let x = data[(i, j)];
                let left_tail = ecdf(&column.sorted, x); // P(X <= x)
                let right_tail = ecdf_right(&column.sorted, x); // P(X >= x)
                let ol = -left_tail.max(1e-12).ln();
                let or = -right_tail.max(1e-12).ln();
                o_left += ol;
                o_right += or;
                // Skewness-corrected choice: for left-skewed dimensions the
                // interesting tail is the left one, otherwise the right one.
                o_auto += if column.skew < 0.0 { ol } else { or };
            }
            o_left.max(o_right).max(o_auto)
        })
    }

    fn save_state(&self) -> serde::Value {
        self.model().to_value()
    }

    fn load_state(&mut self, state: &serde::Value) -> Result<(), serde::Error> {
        self.model = Some(EcodModel::from_value(state)?);
        Ok(())
    }

    fn name(&self) -> &'static str {
        "ECOD"
    }
}

/// Right-tail empirical CDF value: the (smoothed) fraction of samples ≥ x.
fn ecdf_right(sorted: &[f32], x: f32) -> f32 {
    let n = sorted.len();
    if n == 0 {
        return 0.5;
    }
    let below = sorted.partition_point(|&v| v < x);
    let count_ge = n - below;
    (count_ge as f32 + 1.0) / (n as f32 + 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{
        assert_detects_outliers, assert_empty_fit_scores_zero, assert_fit_score_contract,
    };

    #[test]
    fn detects_planted_outliers() {
        assert_detects_outliers(&mut Ecod::new());
    }

    #[test]
    fn fit_score_contract_holds() {
        assert_fit_score_contract(&mut Ecod::new());
        assert_empty_fit_scores_zero(&mut Ecod::new());
    }

    #[test]
    fn extreme_values_on_both_tails_score_high() {
        // 1-D data with one extreme low and one extreme high value.
        let mut values = vec![0.0_f32; 20];
        for (i, v) in values.iter_mut().enumerate() {
            *v = i as f32 * 0.1;
        }
        values.push(-50.0);
        values.push(50.0);
        let data = Matrix::from_vec(values.len(), 1, values.clone());
        let scores = Ecod::new().fit_score(&data);
        let max_normal = scores[..20].iter().copied().fold(f32::MIN, f32::max);
        assert!(scores[20] > max_normal, "low-tail outlier not detected");
        assert!(scores[21] > max_normal, "high-tail outlier not detected");
    }

    #[test]
    fn unseen_extremes_score_above_fitted_inliers() {
        let inliers = Matrix::from_vec(20, 1, (0..20).map(|i| i as f32 * 0.1).collect());
        let mut detector = Ecod::new();
        detector.fit(&inliers);
        let train_max = detector
            .score(&inliers)
            .into_iter()
            .fold(f32::MIN, f32::max);
        let unseen = detector.score(&Matrix::from_rows(&[&[100.0], &[-100.0]]));
        assert!(unseen.iter().all(|&s| s >= train_max));
    }

    #[test]
    fn handles_degenerate_inputs() {
        assert!(Ecod::new().fit_score(&Matrix::zeros(0, 3)).is_empty());
        assert_eq!(Ecod::new().fit_score(&Matrix::zeros(4, 0)), vec![0.0; 4]);
        // Constant data: all scores equal, no NaNs.
        let constant = Matrix::full(5, 3, 1.0);
        let scores = Ecod::new().fit_score(&constant);
        assert!(scores.iter().all(|s| s.is_finite()));
        let first = scores[0];
        assert!(scores.iter().all(|&s| (s - first).abs() < 1e-6));
    }

    #[test]
    fn scores_are_nonnegative_and_finite() {
        let (data, _) = crate::test_support::cluster_with_outliers();
        let scores = Ecod::new().fit_score(&data);
        assert!(scores.iter().all(|&s| s.is_finite() && s >= 0.0));
    }

    #[test]
    #[should_panic(expected = "call fit()")]
    fn score_before_fit_panics() {
        let _ = Ecod::new().score(&Matrix::zeros(1, 1));
    }

    #[test]
    fn name_is_ecod() {
        assert_eq!(Ecod::new().name(), "ECOD");
    }
}
