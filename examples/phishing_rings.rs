//! Phishing-ring detection on the Ethereum-style transaction graph, with a
//! stage-by-stage walk through the pipeline's public API.
//!
//! ```text
//! cargo run --release --example phishing_rings
//! ```
//!
//! Instead of calling the all-in-one [`TpGrGad`] detector, this example drives
//! the four stages manually — MH-GAE anchors, Alg. 1 sampling, TPGCL
//! embeddings, ECOD scoring — which is the API you would use to swap out or
//! instrument a single stage.

use tp_grgad::prelude::*;

fn main() {
    let dataset = datasets::ethereum::generate(DatasetScale::Small, 9);
    println!(
        "Ethereum-TSGN: {} accounts, {} transactions, {} phishing groups",
        dataset.graph.num_nodes(),
        dataset.graph.num_edges(),
        dataset.anomaly_groups.len()
    );

    // Stage 1 — anchor localization with MH-GAE (GraphSNN Ã target).
    let gae_config = GaeConfig {
        hidden_dim: 32,
        embed_dim: 16,
        epochs: 80,
        ..GaeConfig::default()
    };
    let mut mhgae = MhGae::new(
        dataset.graph.feature_dim(),
        ReconstructionTarget::GraphSnn { lambda: 1.0 },
        gae_config,
    );
    let loss = mhgae.fit(&dataset.graph);
    let anchors = mhgae.anchor_nodes(0.1);
    let anomalous = dataset.anomalous_nodes();
    let hits = anchors.iter().filter(|v| anomalous.contains(v)).count();
    println!(
        "stage 1: MH-GAE final loss {loss:.4}, {} anchors ({} inside true phishing groups)",
        anchors.len(),
        hits
    );

    // Stage 2 — candidate group sampling (Alg. 1).
    let sampling = SamplingConfig::default();
    let (candidates, stats) = sample_candidate_groups(&dataset.graph, &anchors, &sampling);
    println!(
        "stage 2: {} candidate groups (paths {}, trees {}, cycles {}, background {})",
        candidates.len(),
        stats.from_paths,
        stats.from_trees,
        stats.from_cycles,
        stats.from_background
    );

    // Stage 3 — TPGCL contrastive embeddings (PPA vs PBA views).
    let tpgcl_config = TpgclConfig {
        hidden_dim: 32,
        embed_dim: 32,
        mine_hidden_dim: 32,
        epochs: 25,
        ..TpgclConfig::default()
    };
    let mut tpgcl = Tpgcl::new(dataset.graph.feature_dim(), tpgcl_config);
    let contrastive_loss = tpgcl.fit(&dataset.graph, &candidates);
    let embeddings = tpgcl.embed_groups(&dataset.graph, &candidates);
    println!(
        "stage 3: TPGCL loss {contrastive_loss:.4}, embeddings {}x{}",
        embeddings.rows(),
        embeddings.cols()
    );

    // Stage 4 — ECOD outlier scoring of the group embeddings.
    let scores = Ecod::new().fit_score(&embeddings);
    let mut ranked: Vec<(usize, f32)> = scores.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("stage 4: top 5 groups by ECOD score:");
    for (idx, score) in ranked.into_iter().take(5) {
        let group = &candidates[idx];
        let matches_truth = dataset
            .anomaly_groups
            .iter()
            .any(|g| g.jaccard(group) >= 0.5);
        println!(
            "  score {score:7.2}  size {:2}  matches ground truth: {}",
            group.len(),
            matches_truth
        );
    }
}
