//! Using TP-GrGAD on your own graph data.
//!
//! ```text
//! cargo run --release --example custom_graph
//! ```
//!
//! Builds an attributed graph from scratch (as you would from your own edge
//! list and feature table), plants a collusion ring in it, and runs the
//! detector. Also shows how to persist the dataset as JSON for later runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tp_grgad::prelude::*;

fn main() -> Result<(), GrgadError> {
    let mut rng = StdRng::seed_from_u64(123);

    // 1. Build the background graph: 200 users in 4 behavioural segments.
    //    Features: [activity, spend, tenure, connections] per user.
    let n = 200;
    let mut features = Matrix::zeros(n, 4);
    for i in 0..n {
        let segment = (i % 4) as f32;
        features[(i, 0)] = segment * 0.5 + rng.gen_range(-0.1..0.1f32);
        features[(i, 1)] = 1.0 - segment * 0.2 + rng.gen_range(-0.1..0.1f32);
        features[(i, 2)] = rng.gen_range(0.0..1.0);
        features[(i, 3)] = 0.3 + rng.gen_range(-0.05..0.05f32);
    }
    let mut graph = Graph::new(n, features);
    // Sparse interactions, biased within segment.
    while graph.num_edges() < 360 {
        let u = rng.gen_range(0..n);
        let v = if rng.gen_bool(0.7) {
            (u + 4 * rng.gen_range(1..20usize)) % n
        } else {
            rng.gen_range(0..n)
        };
        if u != v {
            graph.add_edge(u, v);
        }
    }

    // 2. Plant a collusion ring: 7 new accounts that transact in a cycle and
    //    share an unusual feature profile.
    let mut ring = Vec::new();
    for _ in 0..7 {
        let v = graph.add_node(&[2.5, -1.0, 0.1, 1.2]);
        ring.push(v);
    }
    for i in 0..ring.len() {
        graph.add_edge(ring[i], ring[(i + 1) % ring.len()]);
    }
    graph.add_edge(ring[0], 17); // one link into the background
    let ring_group = Group::new(ring.clone());
    println!(
        "custom graph: {} nodes, {} edges; planted ring {:?}",
        graph.num_nodes(),
        graph.num_edges(),
        ring_group.nodes()
    );

    // 3. Run the detector.
    let config = TpGrGadConfig::fast().with_seed(123);
    let detector = TpGrGad::new(config);
    let result = detector.detect(&graph)?;

    // 4. Check whether the planted ring was recovered.
    let mut best: Option<(f32, &Group)> = None;
    for (group, score) in result
        .candidate_groups
        .iter()
        .zip(result.scores.iter().copied())
    {
        let jaccard = group.jaccard(&ring_group);
        if jaccard >= 0.5 && best.is_none_or(|(s, _)| score > s) {
            best = Some((score, group));
        }
    }
    match best {
        Some((score, group)) => {
            let rank = result.scores.iter().filter(|&&s| s > score).count() + 1;
            println!(
                "ring recovered as candidate group {:?} with score {score:.2} (rank {rank} of {})",
                group.nodes(),
                result.scores.len()
            );
        }
        None => println!("ring was not covered by any candidate group — try more anchors"),
    }

    // 5. Persist the dataset for later experiments.
    let dataset = GrGadDataset::new("custom-collusion", graph, vec![ring_group]);
    let path = std::env::temp_dir().join("tp_grgad_custom_dataset.json");
    tp_grgad::datasets::io::save_json(&dataset, &path)?;
    let reloaded = tp_grgad::datasets::io::load_json(&path)?;
    println!(
        "dataset saved to {} and reloaded ({} nodes, {} anomaly groups)",
        path.display(),
        reloaded.graph.num_nodes(),
        reloaded.anomaly_groups.len()
    );
    Ok(())
}
