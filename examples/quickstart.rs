//! Quickstart: fit a TP-GrGAD model once, then score graphs with it.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates the illustration graph from the paper (a normal community with a
//! planted path, tree and cycle group), trains the pipeline once with
//! [`TpGrGad::fit`], scores the graph (and a second snapshot) from the
//! trained artifact, and round-trips the model through JSON — the
//! fit-once/score-many serving workflow.

use tp_grgad::prelude::*;

fn main() -> Result<(), GrgadError> {
    // 1. A small benchmark graph with three planted anomaly groups.
    let dataset = datasets::example::generate(120, 7);
    println!(
        "graph: {} nodes, {} edges, {} planted anomaly groups",
        dataset.graph.num_nodes(),
        dataset.graph.num_edges(),
        dataset.anomaly_groups.len()
    );

    // 2. Configure and train. `fast()` is a reduced configuration that
    //    finishes in a few seconds; `TpGrGadConfig::paper()` matches the
    //    paper's hyperparameters, and `TpGrGadConfig::builder()` offers a
    //    fluent way to tweak individual knobs.
    let config = TpGrGadConfig::fast().with_seed(7);
    let detector = TpGrGad::new(config);
    let mut fit_timings = TimingObserver::new();
    let trained = detector.fit_observed(&dataset.graph, &mut fit_timings)?;
    println!(
        "trained in {:.2?} ({} gradient epochs across stages)",
        fit_timings.total_wall(),
        fit_timings.total_train_epochs()
    );

    // 3. Score with the trained artifact — zero training epochs.
    let mut score_timings = TimingObserver::new();
    let result = trained.score_observed(&dataset.graph, &mut score_timings)?;
    println!(
        "scored in {:.2?} ({} training epochs — the serving path never trains)",
        score_timings.total_wall(),
        score_timings.total_train_epochs()
    );
    println!(
        "anchors: {} nodes, candidate groups: {} (paths {}, trees {}, cycles {}, background {})",
        result.anchor_nodes.len(),
        result.candidate_groups.len(),
        result.sampling_stats.from_paths,
        result.sampling_stats.from_trees,
        result.sampling_stats.from_cycles,
        result.sampling_stats.from_background,
    );

    // 4. The detector's output per Definition 1: groups with anomaly scores.
    println!("\nreported anomaly groups (top 5 by score):");
    for (group, score) in result.anomalous_groups().into_iter().take(5) {
        println!("  score {score:7.2}  nodes {:?}", group.nodes());
    }

    // 5. Group-level metrics against the ground truth.
    let report = evaluate_detection(
        &result.candidate_groups,
        &result.scores,
        &result.predicted_anomalous,
        &dataset.anomaly_groups,
        detector.config().match_jaccard,
    );
    println!(
        "\nmetrics: CR {:.2}  F1 {:.2}  AUC {:.2}  (predicted {} groups, avg size {:.1})",
        report.cr, report.f1, report.auc, report.num_predicted, report.avg_predicted_size
    );

    // 6. Persist the trained model and score a fresh snapshot with the
    //    reloaded copy — no retraining.
    let json = trained.to_json()?;
    let reloaded = TrainedTpGrGad::from_json(&json)?;
    let snapshot = datasets::example::generate(90, 8);
    let snapshot_result = reloaded.score(&snapshot.graph)?;
    println!(
        "\nreloaded model ({} KiB JSON) scored a {}-node snapshot: {} candidates, {} flagged",
        json.len() / 1024,
        snapshot.graph.num_nodes(),
        snapshot_result.candidate_groups.len(),
        snapshot_result
            .predicted_anomalous
            .iter()
            .filter(|&&f| f)
            .count()
    );
    Ok(())
}
