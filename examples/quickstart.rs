//! Quickstart: detect anomaly groups in a small synthetic graph.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Generates the illustration graph from the paper (a normal community with a
//! planted path, tree and cycle group), runs the full TP-GrGAD pipeline and
//! prints the reported anomaly groups together with the evaluation metrics.

use tp_grgad::prelude::*;

fn main() {
    // 1. A small benchmark graph with three planted anomaly groups.
    let dataset = datasets::example::generate(120, 7);
    println!(
        "graph: {} nodes, {} edges, {} planted anomaly groups",
        dataset.graph.num_nodes(),
        dataset.graph.num_edges(),
        dataset.anomaly_groups.len()
    );

    // 2. Configure and run TP-GrGAD. `fast()` is a reduced configuration that
    //    finishes in a few seconds; `TpGrGadConfig::default()` matches the
    //    paper's hyperparameters.
    let config = TpGrGadConfig::fast().with_seed(7);
    let detector = TpGrGad::new(config);
    let (result, report) = detector.evaluate(&dataset);

    // 3. Inspect the pipeline stages.
    println!(
        "anchors: {} nodes, candidate groups: {} (paths {}, trees {}, cycles {}, background {})",
        result.anchor_nodes.len(),
        result.candidate_groups.len(),
        result.sampling_stats.from_paths,
        result.sampling_stats.from_trees,
        result.sampling_stats.from_cycles,
        result.sampling_stats.from_background,
    );

    // 4. The detector's output per Definition 1: groups with anomaly scores.
    println!("\nreported anomaly groups (top 5 by score):");
    for (group, score) in result.anomalous_groups().into_iter().take(5) {
        println!("  score {score:7.2}  nodes {:?}", group.nodes());
    }

    // 5. Group-level metrics against the ground truth.
    println!(
        "\nmetrics: CR {:.2}  F1 {:.2}  AUC {:.2}  (predicted {} groups, avg size {:.1})",
        report.cr, report.f1, report.auc, report.num_predicted, report.avg_predicted_size
    );
}
