//! Money-laundering detection on the AMLSim-style simML dataset.
//!
//! ```text
//! cargo run --release --example money_laundering
//! ```
//!
//! This is the workload the paper's introduction motivates: laundering groups
//! form chains, fan-out trees and cycles inside a transaction graph. The
//! example runs TP-GrGAD and a node-level baseline (DOMINANT generalized via
//! connected components) side by side and compares what they recover.

use tp_grgad::prelude::*;

use tp_grgad::baselines::{detect_groups, BaselineConfig, Dominant, GroupExtractionConfig};
use tp_grgad::graph::patterns::classify;
use tp_grgad::metrics::evaluate_predicted_groups;

fn main() -> Result<(), GrgadError> {
    // The simML money-laundering benchmark (AMLSim-style generator).
    let dataset = datasets::simml::generate(DatasetScale::Small, 3);
    let stats = dataset.statistics();
    println!(
        "simML: {} accounts, {} transactions, {} laundering groups (avg size {:.1})",
        stats.nodes, stats.edges, stats.anomaly_groups, stats.avg_group_size
    );
    let (paths, trees, cycles, _) = dataset.pattern_statistics();
    println!("ground-truth typologies: {paths} chains, {trees} fan-outs, {cycles} cycles\n");

    // --- TP-GrGAD -----------------------------------------------------------
    let mut config = TpGrGadConfig::fast().with_seed(3);
    config.tpgcl.epochs = 25;
    let (result, report) = TpGrGad::new(config).evaluate(&dataset)?;
    println!(
        "TP-GrGAD : CR {:.2}  F1 {:.2}  AUC {:.2}  ({} groups reported)",
        report.cr, report.f1, report.auc, report.num_predicted
    );

    // Topology patterns of the reported groups — the clue the method exploits.
    let mut reported_patterns = std::collections::BTreeMap::new();
    for (group, _) in result.anomalous_groups() {
        let (sub, _) = group.induced_subgraph(&dataset.graph);
        *reported_patterns
            .entry(classify(&sub).name())
            .or_insert(0usize) += 1;
    }
    println!("reported group patterns: {reported_patterns:?}");

    // --- DOMINANT baseline ---------------------------------------------------
    let baseline = Dominant::new(BaselineConfig {
        epochs: 60,
        ..BaselineConfig::fast_test()
    });
    let detection = detect_groups(&baseline, &dataset.graph, &GroupExtractionConfig::default());
    let baseline_report = evaluate_predicted_groups(
        &detection.groups,
        &detection.group_scores,
        &dataset.anomaly_groups,
        0.5,
    );
    println!(
        "DOMINANT : CR {:.2}  F1 {:.2}  AUC {:.2}  ({} groups, avg size {:.1})",
        baseline_report.cr,
        baseline_report.f1,
        baseline_report.auc,
        baseline_report.num_predicted,
        baseline_report.avg_predicted_size
    );

    println!(
        "\nTP-GrGAD recovers whole laundering groups (avg reported size {:.1} vs ground truth {:.1}),\n\
         while the node-level baseline fragments them — the paper's Fig. 5 observation.",
        report.avg_predicted_size, stats.avg_group_size
    );
    Ok(())
}
