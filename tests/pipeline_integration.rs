//! End-to-end integration tests of the TP-GrGAD pipeline across crates:
//! datasets → MH-GAE → sampling → TPGCL → outlier scoring → metrics.

use tp_grgad::prelude::*;

fn fast_config(seed: u64) -> TpGrGadConfig {
    TpGrGadConfig::fast().with_seed(seed)
}

#[test]
fn full_pipeline_on_example_graph_beats_chance() {
    let dataset = datasets::example::generate(120, 21);
    let (result, report) = TpGrGad::new(fast_config(21))
        .evaluate(&dataset)
        .expect("evaluate");
    assert!(!result.candidate_groups.is_empty());
    assert!(result.scores.iter().all(|s| s.is_finite()));
    assert!(
        report.cr > 0.25 || report.auc > 0.55,
        "pipeline should beat chance on the example graph: {report:?}"
    );
}

#[test]
fn full_pipeline_on_simml_recovers_laundering_groups() {
    let dataset = datasets::simml::generate(DatasetScale::Small, 2);
    let (result, report) = TpGrGad::new(fast_config(2))
        .evaluate(&dataset)
        .expect("evaluate");
    // The laundering groups carry a strong signal; the pipeline must do
    // clearly better than random on both completeness and ranking.
    assert!(report.cr > 0.4, "CR too low: {report:?}");
    assert!(report.auc > 0.6, "AUC too low: {report:?}");
    assert!(!result.anomalous_groups().is_empty());
}

#[test]
fn detector_kinds_are_interchangeable() {
    let dataset = datasets::example::generate(80, 5);
    for kind in [
        DetectorKind::Ecod,
        DetectorKind::ZScore,
        DetectorKind::Ensemble,
    ] {
        let mut config = fast_config(5);
        config.detector = kind;
        config.tpgcl.epochs = 5;
        config.gae.epochs = 20;
        let result = TpGrGad::new(config).detect(&dataset.graph).expect("detect");
        assert_eq!(result.scores.len(), result.candidate_groups.len());
        assert!(
            result.scores.iter().all(|s| s.is_finite()),
            "{kind:?} produced NaN"
        );
    }
}

#[test]
fn reconstruction_target_ablation_runs_end_to_end() {
    let dataset = datasets::example::generate(80, 6);
    for target in [
        ReconstructionTarget::Adjacency,
        ReconstructionTarget::KHop(3),
        ReconstructionTarget::GraphSnn { lambda: 1.0 },
    ] {
        let mut config = fast_config(6);
        config.reconstruction_target = target;
        config.gae.epochs = 20;
        config.tpgcl.epochs = 5;
        let (_, report) = TpGrGad::new(config).evaluate(&dataset).expect("evaluate");
        assert!(report.cr >= 0.0 && report.cr <= 1.0);
    }
}

#[test]
fn pipeline_is_deterministic_for_fixed_seed() {
    let dataset = datasets::example::generate(80, 9);
    let run = || {
        let mut config = fast_config(9);
        config.gae.epochs = 25;
        config.tpgcl.epochs = 8;
        TpGrGad::new(config).detect(&dataset.graph).expect("detect")
    };
    let a = run();
    let b = run();
    assert_eq!(a.anchor_nodes, b.anchor_nodes);
    assert_eq!(a.candidate_groups, b.candidate_groups);
    assert_eq!(a.predicted_anomalous, b.predicted_anomalous);
}

#[test]
fn results_expose_definition_one_output() {
    let dataset = datasets::example::generate(80, 12);
    let result = TpGrGad::new(fast_config(12))
        .detect(&dataset.graph)
        .expect("detect");
    let reported = result.anomalous_groups();
    // Definition 1: a set of groups with scores above the threshold, here
    // realized by the adaptive tau; at least one group is always reported.
    assert!(!reported.is_empty());
    for (group, score) in &reported {
        assert!(!group.is_empty());
        assert!(score.is_finite());
    }
}
