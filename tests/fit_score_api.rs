//! Integration tests for the fit/score split: the trained-model artifact,
//! serving-path guarantees (zero training epochs), JSON persistence, and
//! bit-for-bit agreement with the legacy `detect()` API.

use tp_grgad::prelude::*;

fn fast_config(seed: u64) -> TpGrGadConfig {
    TpGrGadConfig::fast().with_seed(seed)
}

/// `fit` then `score` on the same graph must reproduce the legacy one-shot
/// `detect` output bit-for-bit, for several seeds and detectors.
#[test]
fn fit_score_matches_detect_bit_for_bit() {
    for (seed, kind) in [
        (1, DetectorKind::Ecod),
        (2, DetectorKind::ZScore),
        (3, DetectorKind::Ensemble),
    ] {
        let dataset = datasets::example::generate(36, seed);
        let mut config = fast_config(seed);
        config.detector = kind;
        let pipeline = TpGrGad::new(config);

        let legacy = pipeline.detect(&dataset.graph).expect("detect");
        let trained = pipeline.fit(&dataset.graph).expect("fit");
        let served = trained.score(&dataset.graph).expect("score");

        assert_eq!(legacy.anchor_nodes, served.anchor_nodes, "{kind} anchors");
        assert_eq!(legacy.node_errors, served.node_errors, "{kind} errors");
        assert_eq!(
            legacy
                .candidate_groups
                .iter()
                .map(|g| g.nodes().to_vec())
                .collect::<Vec<_>>(),
            served
                .candidate_groups
                .iter()
                .map(|g| g.nodes().to_vec())
                .collect::<Vec<_>>(),
            "{kind} candidate groups"
        );
        assert_eq!(legacy.scores, served.scores, "{kind} scores");
        assert_eq!(
            legacy.predicted_anomalous, served.predicted_anomalous,
            "{kind} predictions"
        );

        // Scoring must be stateless: a second pass is identical.
        let again = trained.score(&dataset.graph).expect("rescore");
        assert_eq!(served.scores, again.scores, "{kind} rescore");
    }
}

/// The acceptance criterion: scoring with a pre-fitted model runs with zero
/// training epochs, observer-verified.
#[test]
fn score_runs_zero_training_epochs() {
    let dataset = datasets::example::generate(36, 4);
    let pipeline = TpGrGad::new(fast_config(4));

    let mut fit_observer = TimingObserver::new();
    let trained = pipeline
        .fit_observed(&dataset.graph, &mut fit_observer)
        .expect("fit");
    assert_eq!(fit_observer.stages.len(), 4, "four stages per fit");
    assert!(
        fit_observer.total_train_epochs() > 0,
        "fit must actually train"
    );

    let mut score_observer = TimingObserver::new();
    let result = trained
        .score_observed(&dataset.graph, &mut score_observer)
        .expect("score");
    assert!(!result.scores.is_empty());
    assert_eq!(score_observer.stages.len(), 4, "four stages per score");
    assert_eq!(
        score_observer.total_train_epochs(),
        0,
        "serving path must not train: {}",
        score_observer.summary()
    );
    for report in &score_observer.stages {
        assert_eq!(report.train_epochs, 0, "stage {} trained", report.stage);
    }
}

/// save → load → score must reproduce the original scores exactly.
#[test]
fn save_load_round_trip_reproduces_scores_exactly() {
    for kind in [
        DetectorKind::Ecod,
        DetectorKind::Lof,
        DetectorKind::IsolationForest,
    ] {
        let dataset = datasets::example::generate(36, 9);
        let mut config = fast_config(9);
        config.detector = kind;
        let trained = TpGrGad::new(config).fit(&dataset.graph).expect("fit");
        let original = trained.score(&dataset.graph).expect("score");

        let json = trained.to_json().unwrap();
        let reloaded = TrainedTpGrGad::from_json(&json).unwrap();
        assert_eq!(reloaded.detector_name(), trained.detector_name());
        let replayed = reloaded.score(&dataset.graph).expect("score");

        assert_eq!(original.scores, replayed.scores, "{kind} scores");
        assert_eq!(original.node_errors, replayed.node_errors, "{kind} errors");
        assert_eq!(
            original.predicted_anomalous, replayed.predicted_anomalous,
            "{kind} predictions"
        );
    }
}

/// File-based persistence round trip through `save`/`load`.
#[test]
fn save_load_file_round_trip() {
    let dataset = datasets::example::generate(30, 12);
    let trained = TpGrGad::new(fast_config(12))
        .fit(&dataset.graph)
        .expect("fit");
    let path = std::env::temp_dir().join("tp_grgad_model_test.json");
    trained.save(&path).unwrap();
    let reloaded = TrainedTpGrGad::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(
        trained.score(&dataset.graph).expect("score").scores,
        reloaded.score(&dataset.graph).expect("score").scores
    );
    assert!(TrainedTpGrGad::from_json("{\"format\":\"nope\"}").is_err());
}

/// A model fitted on one graph scores an *unseen* snapshot with sane shapes
/// and finite scores.
#[test]
fn scoring_a_second_snapshot_returns_sane_shapes() {
    let train = datasets::example::generate(36, 20);
    let trained = TpGrGad::new(fast_config(20))
        .fit(&train.graph)
        .expect("fit");

    // A different synthetic snapshot with the same feature dimensionality.
    let snapshot = datasets::example::generate(48, 21);
    assert_eq!(train.graph.feature_dim(), snapshot.graph.feature_dim());

    let result = trained.score(&snapshot.graph).expect("score");
    assert_eq!(result.node_errors.len(), snapshot.graph.num_nodes());
    assert!(!result.anchor_nodes.is_empty());
    assert_eq!(result.candidate_groups.len(), result.scores.len());
    assert_eq!(
        result.candidate_groups.len(),
        result.predicted_anomalous.len()
    );
    assert_eq!(result.embeddings.rows(), result.candidate_groups.len());
    assert!(result.scores.iter().all(|s| s.is_finite()));

    // Pre-sampled candidates score through the dedicated serving entry point.
    let direct = trained
        .score_groups(&snapshot.graph, &result.candidate_groups)
        .expect("score_groups");
    assert_eq!(direct, result.scores);
}

/// The fluent builder and presets cooperate with the fit/score API.
#[test]
fn builder_and_presets_drive_the_pipeline() {
    let dataset = datasets::example::generate(30, 30);
    let config = TpGrGadConfig::builder()
        .fast()
        .detector("ecod".parse().unwrap())
        .adaptive_threshold(true)
        .seed(30)
        .build();
    let result = TpGrGad::new(config).detect(&dataset.graph).expect("detect");
    assert!(!result.anomalous_groups().is_empty());

    // Presets expose distinct training budgets.
    assert!(TpGrGadConfig::serving().gae.epochs < TpGrGadConfig::paper().gae.epochs);
    assert_eq!(DetectorKind::Ecod.to_string(), "ECOD");
}
