//! Property test for the first-class [`IncrementalState`] API: across seeded
//! low-churn delta streams, [`TrainedTpGrGad::score_incremental`] must equal
//! a from-scratch `score()` **bit-for-bit after every round** — at 1 and 4
//! worker threads, and on both sides of the dirty-fraction fallback
//! threshold (rounds small enough to stay incremental and churn bursts large
//! enough to force the full-mode fallback take the same oracle).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tp_grgad::prelude::*;

/// Mutates the graph in place with `count` seeded deltas and marks the same
/// dirt on the state — exactly what a serving host does per batch.
fn churn<R: Rng>(rng: &mut R, graph: &mut Graph, state: &mut IncrementalState, count: usize) {
    let n = graph.num_nodes();
    let dim = graph.feature_dim();
    for _ in 0..count {
        match rng.gen_range(0..3u32) {
            0 => {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if graph.try_add_edge(u, v).expect("valid endpoints") {
                    state.mark_edge(u, v);
                }
            }
            1 => {
                let u = rng.gen_range(0..n);
                if graph.degree(u) > 0 {
                    let v = graph.neighbors(u)[rng.gen_range(0..graph.degree(u))];
                    if graph.try_remove_edge(u, v).expect("valid endpoints") {
                        state.mark_edge(u, v);
                    }
                }
            }
            _ => {
                let node = rng.gen_range(0..n);
                let features: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
                graph
                    .try_set_node_features(node, &features)
                    .expect("valid node");
                state.mark_node(node);
            }
        }
    }
}

fn assert_parity(incremental: &TpGrGadResult, full: &TpGrGadResult, context: &str) {
    assert_eq!(
        incremental.anchor_nodes, full.anchor_nodes,
        "{context}: anchors diverged"
    );
    assert_eq!(
        incremental.candidate_groups, full.candidate_groups,
        "{context}: groups diverged"
    );
    let inc_bits: Vec<u32> = incremental.scores.iter().map(|s| s.to_bits()).collect();
    let full_bits: Vec<u32> = full.scores.iter().map(|s| s.to_bits()).collect();
    assert_eq!(inc_bits, full_bits, "{context}: score bits diverged");
    assert_eq!(
        incremental.predicted_anomalous, full.predicted_anomalous,
        "{context}: predictions diverged"
    );
}

/// One seeded stream: 6 low-churn rounds (2 deltas each, safely below the
/// fallback threshold), then one churn burst (touching well over half the
/// graph, forcing the full-mode fallback), then 2 more low-churn rounds to
/// prove the state recovers into incremental mode. Returns the per-round
/// score bits for the cross-thread determinism check.
fn run_stream(seed: u64, num_threads: usize) -> Vec<Vec<u32>> {
    let dataset = datasets::example::generate(50, seed);
    let mut config = TpGrGadConfig::fast().with_seed(seed);
    config.num_threads = num_threads;
    let trained = TpGrGad::new(config).fit(&dataset.graph).expect("fit");

    let mut graph = dataset.graph.clone();
    let mut state = IncrementalState::new()
        .with_max_dirty_fraction(0.3)
        .expect("valid fraction");
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x51_7C_C1_B7));
    let mut history = Vec::new();

    // Cold start is always a full score.
    let (first, mode) = trained
        .score_incremental(&graph, &mut state)
        .expect("cold score");
    assert_eq!(
        mode,
        ScoreMode::Full,
        "seed {seed}: cold state must go full"
    );
    assert_parity(&first, &trained.score(&graph).expect("oracle"), "cold");

    for round in 0..9usize {
        let burst = round == 6;
        if burst {
            // Touch > 30% of nodes: the dirty fraction crosses the
            // threshold and the state must fall back to a full re-score.
            for node in 0..graph.num_nodes() / 2 {
                let features: Vec<f32> = (0..graph.feature_dim())
                    .map(|_| rng.gen_range(-1.0..1.0f32))
                    .collect();
                graph
                    .try_set_node_features(node, &features)
                    .expect("valid node");
                state.mark_node(node);
            }
        } else {
            churn(&mut rng, &mut graph, &mut state, 2);
        }

        let (incremental, mode) = trained
            .score_incremental(&graph, &mut state)
            .expect("incremental score");
        let expected = if burst {
            ScoreMode::Full
        } else {
            ScoreMode::Incremental
        };
        assert_eq!(
            mode, expected,
            "seed {seed} threads {num_threads} round {round}: wrong mode"
        );

        let full = trained.score(&graph).expect("full oracle");
        assert_parity(
            &incremental,
            &full,
            &format!("seed {seed} threads {num_threads} round {round}"),
        );
        history.push(incremental.scores.iter().map(|s| s.to_bits()).collect());
    }

    let stats = state.stats();
    assert_eq!(
        (stats.scores_incremental, stats.scores_full),
        (8, 2),
        "seed {seed}: 8 low-churn rounds + cold start + burst"
    );
    assert!(
        stats.groups_reused > 0 && stats.anchors_reused > 0,
        "seed {seed}: low churn must reuse draws and anchors: {stats:?}"
    );
    history
}

#[test]
fn low_churn_streams_match_full_scoring_bit_for_bit_seed_5() {
    let single = run_stream(5, 1);
    let multi = run_stream(5, 4);
    assert_eq!(single, multi, "thread count must not change score bits");
}

#[test]
fn low_churn_streams_match_full_scoring_bit_for_bit_seed_6() {
    let single = run_stream(6, 1);
    let multi = run_stream(6, 4);
    assert_eq!(single, multi, "thread count must not change score bits");
}

#[test]
fn low_churn_streams_match_full_scoring_bit_for_bit_seed_7() {
    let single = run_stream(7, 1);
    let multi = run_stream(7, 4);
    assert_eq!(single, multi, "thread count must not change score bits");
}
