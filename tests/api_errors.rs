//! Table-driven coverage of the error taxonomy: every [`GrgadError`]
//! variant must be *producible from the public API* — an enum variant no
//! boundary can actually emit is dead weight, and a boundary emitting the
//! wrong variant breaks the serving layer's wire mapping.

use std::sync::Arc;

use tp_grgad::prelude::*;
use tp_grgad::serve::protocol::parse_request;
use tp_grgad::serve::Session;
use tp_grgad::server::{read_frame, ResponseWriter, Scheduler};

fn fitted(seed: u64) -> (TrainedTpGrGad, GrGadDataset) {
    let dataset = datasets::example::generate(30, seed);
    let trained = TpGrGad::new(TpGrGadConfig::fast().with_seed(seed))
        .fit(&dataset.graph)
        .expect("fit");
    (trained, dataset)
}

/// Every error kind, with a public-API call that must produce it.
#[test]
fn every_error_variant_is_producible_from_the_public_api() {
    let (trained, dataset) = fitted(1);
    let dim = dataset.graph.feature_dim();
    let n = dataset.graph.num_nodes();

    type Producer<'a> = Box<dyn Fn() -> GrgadError + 'a>;
    let cases: Vec<(&str, Producer)> = vec![
        (
            // Feature-dim mismatch between a scoring graph and the model.
            "shape_mismatch",
            Box::new(|| {
                let other = Graph::new(4, Matrix::zeros(4, dim + 1));
                trained.score(&other).unwrap_err()
            }),
        ),
        (
            // A candidate group referencing a node beyond the graph.
            "invalid_node_id",
            Box::new(|| {
                let group = Group::new(vec![0, n + 100]);
                trained.score_groups(&dataset.graph, &[group]).unwrap_err()
            }),
        ),
        (
            // NaN node attributes rejected at the fit boundary.
            "non_finite_input",
            Box::new(|| {
                let mut features = Matrix::zeros(8, dim);
                features[(3, 0)] = f32::NAN;
                let nan_graph = Graph::new(8, features);
                TpGrGad::new(TpGrGadConfig::fast())
                    .fit(&nan_graph)
                    .unwrap_err()
            }),
        ),
        (
            // A zero-node graph cannot be fitted or scored.
            "empty_graph",
            Box::new(|| {
                TpGrGad::new(TpGrGadConfig::fast())
                    .fit(&Graph::with_no_features(0))
                    .unwrap_err()
            }),
        ),
        (
            // A group with no members cannot be scored.
            "empty_group",
            Box::new(|| {
                trained
                    .score_groups(&dataset.graph, &[Group::new(vec![])])
                    .unwrap_err()
            }),
        ),
        (
            // A truncated model file fails with the path in the error.
            "model_io",
            Box::new(|| {
                let path = std::env::temp_dir().join("grgad_api_errors_truncated.json");
                std::fs::write(&path, "{\"format\":\"tp-grgad-model/v1\",\"conf").expect("write");
                let err = TrainedTpGrGad::load(&path).unwrap_err();
                std::fs::remove_file(&path).ok();
                err
            }),
        ),
        (
            // An out-of-domain configuration knob fails before training.
            "config_invalid",
            Box::new(|| {
                let mut config = TpGrGadConfig::fast();
                config.contamination = -0.5;
                TpGrGad::new(config).fit(&dataset.graph).unwrap_err()
            }),
        ),
        (
            // A malformed serving request fails at the protocol boundary.
            "protocol",
            Box::new(|| parse_request(r#"{"op":"warp_core"}"#).unwrap_err()),
        ),
        (
            // A frame whose length prefix exceeds the wire limit is
            // transport corruption, not a protocol error.
            "transport",
            Box::new(|| {
                let mut corrupt: &[u8] = &[0xff, 0xff, 0xff, 0xff];
                read_frame(&mut corrupt).unwrap_err()
            }),
        ),
        (
            // Routing an op to a tenant nobody created.
            "tenant_not_found",
            Box::new(|| EngineRegistry::new().route("ghost").unwrap_err()),
        ),
        (
            // A full scheduler shard sheds load instead of blocking. With
            // one worker and a single queue slot, submitting faster than
            // the worker drains must shed within a few thousand attempts —
            // every accepted job still completes (checked via `flushed`).
            "overloaded",
            Box::new(|| {
                let scheduler = Scheduler::new(1, 1);
                let registry = EngineRegistry::new();
                let route = registry.create("overload-probe").expect("create");
                let writer = ResponseWriter::new(Box::new(std::io::sink()));
                let mut seq = 0u64;
                let err = loop {
                    match scheduler.submit_engine(
                        &route,
                        r#"{"op":"stats"}"#.into(),
                        Arc::clone(&writer),
                        seq,
                    ) {
                        Ok(()) => seq += 1,
                        Err(e) => break e,
                    }
                    assert!(seq < 10_000, "single-slot shard never filled");
                };
                scheduler.shutdown();
                assert_eq!(writer.flushed(), seq, "accepted jobs must all run");
                err
            }),
        ),
    ];

    let mut covered = std::collections::BTreeSet::new();
    for (expected_kind, produce) in &cases {
        let err = produce();
        assert_eq!(
            err.kind(),
            *expected_kind,
            "wrong variant for the {expected_kind} case: {err:?}"
        );
        assert!(!err.to_string().is_empty());
        covered.insert(err.kind());
    }

    // The table must cover the whole taxonomy — extending GrgadError means
    // extending this test.
    let all_kinds = [
        "shape_mismatch",
        "invalid_node_id",
        "non_finite_input",
        "empty_graph",
        "empty_group",
        "model_io",
        "config_invalid",
        "protocol",
        "transport",
        "tenant_not_found",
        "overloaded",
    ];
    for kind in all_kinds {
        assert!(covered.contains(kind), "no public-API producer for {kind}");
    }
    assert_eq!(covered.len(), all_kinds.len());
}

/// The specific variant details the serving layer relies on.
#[test]
fn error_payloads_carry_actionable_context() {
    let (trained, dataset) = fitted(2);

    // ModelIo names the missing file.
    let err = TrainedTpGrGad::load("/nonexistent/grgad/model.json").unwrap_err();
    match &err {
        GrgadError::ModelIo { path, cause } => {
            assert!(path.contains("model.json"));
            assert!(!cause.is_empty());
        }
        other => panic!("expected ModelIo, got {other:?}"),
    }

    // InvalidNodeId reports both the offending id and the valid range.
    let n = dataset.graph.num_nodes();
    let err = trained
        .score_groups(&dataset.graph, &[Group::new(vec![n + 7])])
        .unwrap_err();
    match err {
        GrgadError::InvalidNodeId {
            node, num_nodes, ..
        } => {
            assert_eq!(node, n + 7);
            assert_eq!(num_nodes, n);
        }
        other => panic!("expected InvalidNodeId, got {other:?}"),
    }

    // TenantNotFound names the tenant the client asked for, so the wire
    // error is self-explanatory.
    match EngineRegistry::new().route("ghost").unwrap_err() {
        GrgadError::TenantNotFound { tenant } => assert_eq!(tenant, "ghost"),
        other => panic!("expected TenantNotFound, got {other:?}"),
    }

    // ShapeMismatch reports expected vs got dims.
    let wrong = Graph::new(3, Matrix::zeros(3, dataset.graph.feature_dim() + 2));
    match trained.score(&wrong).unwrap_err() {
        GrgadError::ShapeMismatch { expected, got, .. } => {
            assert_eq!(expected, dataset.graph.feature_dim());
            assert_eq!(got, dataset.graph.feature_dim() + 2);
        }
        other => panic!("expected ShapeMismatch, got {other:?}"),
    }
}

/// Errors map onto the NDJSON wire with stable kinds — the contract a
/// server client programs against.
#[test]
fn serving_session_reports_typed_errors_on_the_wire() {
    let mut session = Session::new();
    let cases = [
        (r#"{"op":"score"}"#, "protocol"), // nothing loaded yet
        (
            r#"{"op":"load","model":"/no/m.json","graph":"/no/g.json"}"#,
            "model_io",
        ),
        ("garbage", "protocol"),
    ];
    for (line, kind) in cases {
        let response = session.handle_line(line).to_json_line();
        assert!(
            response.contains(&format!("\"kind\":\"{kind}\"")),
            "{line} -> {response}"
        );
        assert!(response.contains("\"ok\":false"));
    }
}
