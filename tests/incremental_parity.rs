//! The serving layer's core guarantee: for seeded delta streams, the
//! incremental [`ScoringEngine`] output is **bit-for-bit identical** to a
//! from-scratch `TrainedTpGrGad::score()` on the equivalent rebuilt graph —
//! at any thread count.
//!
//! Per the acceptance criteria: ≥3 seeds, ≥200 deltas each, checked at 1
//! and 4 worker threads. The "equivalent rebuilt graph" is maintained as an
//! independent mirror mutated through the plain `Graph` API, so the test
//! also pins the delta-replay ≡ rebuild equivalence the engine relies on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tp_grgad::prelude::*;

/// One seeded delta, applied to both the engine and the mirror graph.
fn random_delta<R: Rng>(rng: &mut R, graph: &Graph) -> GraphDelta {
    let n = graph.num_nodes();
    let dim = graph.feature_dim();
    match rng.gen_range(0..10u32) {
        // Mostly edge churn, some feature updates, occasional node growth.
        0..=3 => GraphDelta::AddEdge {
            u: rng.gen_range(0..n),
            v: rng.gen_range(0..n),
        },
        4..=6 => {
            let u = rng.gen_range(0..n);
            let v = if graph.degree(u) > 0 {
                graph.neighbors(u)[rng.gen_range(0..graph.degree(u))]
            } else {
                u // validated no-op (self-loop removal)
            };
            GraphDelta::RemoveEdge { u, v }
        }
        7..=8 => GraphDelta::SetFeatures {
            node: rng.gen_range(0..n),
            features: (0..dim).map(|_| rng.gen_range(-1.0..1.0f32)).collect(),
        },
        _ => GraphDelta::AddNode {
            features: (0..dim).map(|_| rng.gen_range(-1.0..1.0f32)).collect(),
        },
    }
}

/// Applies a delta to the mirror graph through the plain mutation API.
fn apply_to_mirror(graph: &mut Graph, delta: &GraphDelta) {
    match delta {
        GraphDelta::AddNode { features } => {
            graph.try_add_node(features).expect("mirror add_node");
        }
        GraphDelta::AddEdge { u, v } => {
            graph.try_add_edge(*u, *v).expect("mirror add_edge");
        }
        GraphDelta::RemoveEdge { u, v } => {
            graph.try_remove_edge(*u, *v).expect("mirror remove_edge");
        }
        GraphDelta::SetFeatures { node, features } => {
            graph
                .try_set_node_features(*node, features)
                .expect("mirror set_features");
        }
    }
}

/// Runs one seeded stream at a fixed thread count and returns every
/// incremental score vector, asserting parity after each chunk.
fn run_stream(seed: u64, num_threads: usize) -> Vec<Vec<f32>> {
    const CHUNKS: usize = 10;
    const DELTAS_PER_CHUNK: usize = 21; // 210 deltas total — above the 200 floor

    let dataset = datasets::example::generate(60, seed);
    let mut config = TpGrGadConfig::fast().with_seed(seed);
    config.num_threads = num_threads;
    let trained = TpGrGad::new(config).fit(&dataset.graph).expect("fit");

    let mut engine = ScoringEngine::new(trained, dataset.graph.clone()).expect("engine");
    let mut mirror = dataset.graph.clone();
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9));
    let mut score_history = Vec::new();

    for chunk in 0..CHUNKS {
        for _ in 0..DELTAS_PER_CHUNK {
            let delta = random_delta(&mut rng, engine.graph());
            engine.apply_delta(&delta).expect("engine delta");
            apply_to_mirror(&mut mirror, &delta);
        }

        let (incremental, _mode) = engine.score().expect("incremental score");
        let full = engine.model().score(&mirror).expect("full score");

        assert_eq!(
            incremental.scores, full.scores,
            "seed {seed} threads {num_threads} chunk {chunk}: scores diverged"
        );
        assert_eq!(
            incremental.candidate_groups, full.candidate_groups,
            "seed {seed} threads {num_threads} chunk {chunk}: groups diverged"
        );
        assert_eq!(
            incremental.predicted_anomalous, full.predicted_anomalous,
            "seed {seed} threads {num_threads} chunk {chunk}: predictions diverged"
        );
        assert_eq!(
            incremental.anchor_nodes, full.anchor_nodes,
            "seed {seed} threads {num_threads} chunk {chunk}: anchors diverged"
        );
        score_history.push(incremental.scores);
    }

    // Replay equivalence: the engine's mutated graph is indistinguishable
    // from the independently mutated mirror.
    assert_eq!(engine.graph().num_nodes(), mirror.num_nodes());
    assert_eq!(engine.graph().num_edges(), mirror.num_edges());
    for u in 0..mirror.num_nodes() {
        assert_eq!(engine.graph().neighbors(u), mirror.neighbors(u));
    }

    score_history
}

#[test]
fn incremental_scores_match_full_rescoring_bit_for_bit_seed_1() {
    let single = run_stream(1, 1);
    let multi = run_stream(1, 4);
    assert_eq!(single, multi, "thread count must not change scores");
}

#[test]
fn incremental_scores_match_full_rescoring_bit_for_bit_seed_2() {
    let single = run_stream(2, 1);
    let multi = run_stream(2, 4);
    assert_eq!(single, multi, "thread count must not change scores");
}

#[test]
fn incremental_scores_match_full_rescoring_bit_for_bit_seed_3() {
    let single = run_stream(3, 1);
    let multi = run_stream(3, 4);
    assert_eq!(single, multi, "thread count must not change scores");
}
