//! Integration tests covering the baseline detectors, the group-level metrics
//! and the dataset generators working together (the Table III / Fig. 5
//! machinery).

use tp_grgad::baselines::{
    detect_groups, AsGae, BaselineConfig, DeepAe, Dominant, GroupExtractionConfig,
    NodeAnomalyScorer,
};
use tp_grgad::metrics::{completeness_ratio, evaluate_predicted_groups};
use tp_grgad::prelude::*;

#[test]
fn baselines_run_on_generated_datasets() {
    let dataset = datasets::simml::generate(DatasetScale::Small, 4);
    let config = BaselineConfig::fast_test();
    let scorers: Vec<Box<dyn NodeAnomalyScorer>> = vec![
        Box::new(Dominant::new(config.clone())),
        Box::new(DeepAe::new(config.clone())),
        Box::new(AsGae::new(config)),
    ];
    for scorer in scorers {
        let detection = detect_groups(
            scorer.as_ref(),
            &dataset.graph,
            &GroupExtractionConfig::default(),
        );
        assert_eq!(detection.node_scores.len(), dataset.graph.num_nodes());
        let report = evaluate_predicted_groups(
            &detection.groups,
            &detection.group_scores,
            &dataset.anomaly_groups,
            0.5,
        );
        assert!(report.cr >= 0.0 && report.cr <= 1.0, "{}", scorer.name());
        assert!(report.f1 >= 0.0 && report.f1 <= 1.0, "{}", scorer.name());
    }
}

#[test]
fn attribute_baseline_fragments_groups_relative_to_tp_grgad() {
    // Fig. 5's observation: baselines report much smaller groups than the
    // ground truth, TP-GrGAD tracks the true sizes more closely.
    let dataset = datasets::simml::generate(DatasetScale::Small, 8);
    let truth_avg = dataset.statistics().avg_group_size;

    let detection = detect_groups(
        &DeepAe::new(BaselineConfig::fast_test()),
        &dataset.graph,
        &GroupExtractionConfig::default(),
    );
    let baseline_avg = if detection.groups.is_empty() {
        0.0
    } else {
        detection.groups.iter().map(|g| g.len()).sum::<usize>() as f32
            / detection.groups.len() as f32
    };

    let (_, report) = TpGrGad::new(TpGrGadConfig::fast().with_seed(8))
        .evaluate(&dataset)
        .expect("evaluate");
    let tp_deviation = (report.avg_predicted_size - truth_avg).abs();
    let baseline_deviation = (baseline_avg - truth_avg).abs();
    assert!(
        tp_deviation <= baseline_deviation + 1.5,
        "TP-GrGAD group sizes ({:.1}) should track ground truth ({truth_avg:.1}) at least as well as the baseline ({baseline_avg:.1})",
        report.avg_predicted_size
    );
}

#[test]
fn completeness_ratio_matches_hand_computed_values_on_datasets() {
    let dataset = datasets::ethereum::generate(DatasetScale::Small, 2);
    // Predicting exactly the ground truth gives CR 1; predicting nothing gives 0.
    assert!(
        (completeness_ratio(&dataset.anomaly_groups, &dataset.anomaly_groups) - 1.0).abs() < 1e-6
    );
    assert_eq!(completeness_ratio(&dataset.anomaly_groups, &[]), 0.0);
    // Predicting half of each group gives a CR strictly between.
    let halves: Vec<Group> = dataset
        .anomaly_groups
        .iter()
        .map(|g| {
            Group::new(
                g.nodes()
                    .iter()
                    .copied()
                    .take(g.len() / 2)
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    let cr = completeness_ratio(&dataset.anomaly_groups, &halves);
    assert!(cr > 0.0 && cr < 1.0);
}

#[test]
fn dataset_generators_produce_table_two_pattern_mixes() {
    let aml = datasets::amlpublic::generate(DatasetScale::Small, 0);
    let (paths, trees, cycles, _) = aml.pattern_statistics();
    assert!(
        paths > trees && cycles == 0,
        "AMLPublic should be path-dominant"
    );

    let eth = datasets::ethereum::generate(DatasetScale::Small, 0);
    let (paths, trees, cycles, _) = eth.pattern_statistics();
    assert!(
        trees + cycles > paths,
        "Ethereum should be tree/cycle-dominant"
    );
}

#[test]
fn saved_and_reloaded_dataset_gives_same_detection_input() {
    let dataset = datasets::example::generate(60, 3);
    let path = std::env::temp_dir().join("tp_grgad_integration_roundtrip.json");
    tp_grgad::datasets::io::save_json(&dataset, &path).unwrap();
    let reloaded = tp_grgad::datasets::io::load_json(&path).unwrap();
    assert_eq!(dataset.statistics(), reloaded.statistics());
    assert_eq!(dataset.anomaly_groups, reloaded.anomaly_groups);
    std::fs::remove_file(path).ok();
}
