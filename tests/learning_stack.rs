//! Integration tests of the learning substrate: autograd + GNN + TPGCL + the
//! t-SNE visualizer cooperating on non-trivial tasks.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tp_grgad::autograd::{Adam, Optimizer, Tensor};
use tp_grgad::gnn::GcnEncoder;
use tp_grgad::prelude::*;
use tp_grgad::tsne::{tsne, TsneConfig};

/// A two-community graph where the communities have different attribute
/// profiles; a GCN trained with a simple contrastive-style loss should embed
/// the communities separably.
#[test]
fn gcn_embeddings_separate_communities() {
    let n = 40;
    let mut features = Matrix::zeros(n, 4);
    for i in 0..n {
        if i < 20 {
            features[(i, 0)] = 1.0;
        } else {
            features[(i, 1)] = 1.0;
        }
    }
    let mut graph = Graph::new(n, features);
    for i in 0..20 {
        graph.add_edge(i, (i + 1) % 20);
        graph.add_edge(20 + i, 20 + (i + 1) % 20);
    }
    graph.add_edge(0, 20); // single bridge

    let mut rng = StdRng::seed_from_u64(0);
    let encoder = GcnEncoder::new(&[4, 16, 2], &mut rng);
    let adj = graph.normalized_adjacency();
    let x = Tensor::constant(graph.features().clone());

    // Train embeddings to reconstruct the attribute communities (autoencoder
    // style): gradient must flow through spmm + matmul + activations.
    let mut opt = Adam::new(encoder.parameters(), 0.02);
    let target = {
        let mut t = Matrix::zeros(n, 2);
        for i in 0..n {
            t[(i, if i < 20 { 0 } else { 1 })] = 1.0;
        }
        t
    };
    for _ in 0..150 {
        opt.zero_grad();
        let z = encoder.forward(&adj, &x);
        let loss = z.sigmoid().mse_loss(&target);
        loss.backward();
        opt.step();
    }
    let z = encoder.forward(&adj, &x).value_clone();
    // Mean embedding of each community should differ markedly on some axis.
    let mean_row = |range: std::ops::Range<usize>| -> Vec<f32> {
        let mut m = [0.0; 2];
        for i in range.clone() {
            for j in 0..2 {
                m[j] += z[(i, j)];
            }
        }
        m.iter().map(|v| v / range.len() as f32).collect()
    };
    let a = mean_row(0..20);
    let b = mean_row(20..40);
    let dist = ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2)).sqrt();
    assert!(
        dist > 0.5,
        "community embeddings should separate, distance {dist}"
    );
}

#[test]
fn tpgcl_embeddings_feed_tsne_and_outlier_detection() {
    let dataset = datasets::ethereum::generate(DatasetScale::Small, 6);
    let config = TpGrGadConfig::fast().with_seed(6);
    let result = TpGrGad::new(config).detect(&dataset.graph).expect("detect");
    assert!(result.embeddings.rows() >= 10);

    // t-SNE on the group embeddings (Fig. 7 machinery).
    let map = tsne(
        &result.embeddings,
        &TsneConfig {
            iterations: 60,
            perplexity: 8.0,
            ..Default::default()
        },
    );
    assert_eq!(map.shape(), (result.embeddings.rows(), 2));
    assert!(map.all_finite());

    // Alternative detectors on the same embeddings agree on score count.
    let ecod = Ecod::new().fit_score(&result.embeddings);
    assert_eq!(ecod.len(), result.embeddings.rows());
}

#[test]
fn augmentations_preserve_and_break_patterns_inside_real_groups() {
    use tp_grgad::graph::patterns::{classify, TopologyPattern};
    let dataset = datasets::simml::generate(DatasetScale::Small, 1);
    let mut rng = StdRng::seed_from_u64(3);
    let mut checked = 0;
    for group in &dataset.anomaly_groups {
        let (sub, _) = group.induced_subgraph(&dataset.graph);
        let before = classify(&sub);
        if before == TopologyPattern::Other {
            continue;
        }
        let positive = Augmentation::PatternPreserving.apply(&sub, &mut rng);
        assert_eq!(
            classify(&positive),
            before,
            "PPA must preserve the {} pattern",
            before.name()
        );
        let negative = Augmentation::PatternBreaking.apply(&sub, &mut rng);
        assert_ne!(
            classify(&negative),
            before,
            "PBA must break the {} pattern",
            before.name()
        );
        checked += 1;
    }
    assert!(
        checked >= 5,
        "expected to exercise several real groups, got {checked}"
    );
}
