//! NaN-robustness regression tests for every ranking / thresholding path
//! that sorts floats.
//!
//! All float orderings in the workspace go through `f32::total_cmp` (lint
//! rule D3), so a NaN score must never panic, never poison a sort into
//! nondeterminism, and must land at a *defined* position: `total_cmp`
//! places positive NaN above `+inf`, so in the descending rankings used
//! throughout the pipeline a NaN score ranks first. These tests pin that
//! contract for the thresholding, group-extraction and rank-statistics
//! entry points — the paths a detector emitting a degenerate score would
//! actually flow through.

use tp_grgad::baselines::{groups_from_node_scores, GroupExtractionConfig};
use tp_grgad::graph::Graph;
use tp_grgad::linalg::stats;
use tp_grgad::outlier::{normalize_scores, threshold_by_contamination};

#[test]
fn threshold_by_contamination_survives_nan_scores() {
    let scores = vec![0.2, f32::NAN, 0.9, 0.1, f32::NAN, 0.5];

    // 50% contamination of 6 rows flags exactly 3 — NaN must not change the
    // flag count, and positive NaN outranks every finite score under
    // total_cmp, so both NaN rows are among the flagged.
    let flags = threshold_by_contamination(&scores, 0.5);
    assert_eq!(flags.iter().filter(|&&b| b).count(), 3);
    assert!(
        flags[1] && flags[4],
        "NaN scores must rank first: {flags:?}"
    );
    assert!(flags[2], "0.9 is the top finite score");

    // Deterministic: same input, same flags, every time.
    assert_eq!(flags, threshold_by_contamination(&scores, 0.5));

    // All-NaN input still flags exactly k rows instead of panicking.
    let all_nan = vec![f32::NAN; 4];
    assert_eq!(
        threshold_by_contamination(&all_nan, 0.25)
            .iter()
            .filter(|&&b| b)
            .count(),
        1
    );
}

#[test]
fn normalize_scores_keeps_finite_entries_usable() {
    let normalized = normalize_scores(&[0.0, f32::NAN, 10.0]);
    assert_eq!(normalized.len(), 3);
    // The finite envelope [0, 10] still scales; only the NaN entry is NaN.
    assert_eq!(normalized[0], 0.0);
    assert_eq!(normalized[2], 1.0);
    assert!(normalized[1].is_nan());
}

#[test]
fn group_extraction_survives_nan_node_scores() {
    // Path graph 0-1-2-3-4-5; node 1 gets a NaN score.
    let mut graph = Graph::with_no_features(6);
    for u in 0..5 {
        graph.add_edge(u, u + 1);
    }
    let node_scores = vec![0.1, f32::NAN, 0.8, 0.7, 0.2, 0.1];
    let config = GroupExtractionConfig {
        contamination: 0.5,
        min_group_size: 1,
    };
    let (groups, scores) = groups_from_node_scores(&graph, &node_scores, &config);
    assert!(!groups.is_empty(), "NaN must not wipe out extraction");
    assert_eq!(groups.len(), scores.len());
    // NaN outranks all finite scores, so node 1 is in the flagged top-k and
    // appears in some extracted group.
    assert!(groups.iter().any(|g| g.contains(1)));

    // Bit-identical across repeated runs.
    let (groups2, scores2) = groups_from_node_scores(&graph, &node_scores, &config);
    assert_eq!(groups, groups2);
    let same = scores
        .iter()
        .zip(&scores2)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(same, "group scores must be bit-identical across runs");
}

#[test]
fn rank_statistics_survive_nan() {
    let xs = [3.0, f32::NAN, 1.0, 2.0];

    // ranks: NaN sorts above every finite value under total_cmp, so it gets
    // the top rank; the finite values keep their relative order.
    let r = stats::ranks(&xs);
    assert_eq!(r.len(), 4);
    assert_eq!(r[1], 4.0, "NaN takes the highest rank");
    assert!(r[2] < r[3] && r[3] < r[0]);
    assert_eq!(r, stats::ranks(&xs));

    // median / quantile: defined, deterministic, no panic. With one NaN at
    // the top of the sorted order the lower quantiles stay finite.
    assert_eq!(stats::quantile(&xs, 0.0), 1.0);
    assert!(stats::median(&xs).is_finite() || stats::median(&xs).is_nan());
    let m1 = stats::median(&xs);
    let m2 = stats::median(&xs);
    assert_eq!(m1.to_bits(), m2.to_bits());
}
