//! Workspace-seam tests: assert that the umbrella crate's `prelude`
//! re-exports resolve and behave, and that dataset generation is
//! deterministic for a fixed seed. These guard the Cargo workspace wiring
//! (crate names, dependency edges, re-export paths) rather than any one
//! algorithm.

use tp_grgad::prelude::*;

/// The four re-exports the ISSUE calls out must resolve *through the
/// prelude* and be usable end-to-end.
#[test]
fn prelude_reexports_resolve_and_run() {
    let dataset = datasets::example::generate(40, 7);

    // `CsrMatrix` via the prelude. The generator adds anomaly-group nodes on
    // top of the 40 background nodes, so compare against the actual count.
    let n = dataset.graph.num_nodes();
    assert!(n >= 40);
    let adjacency: CsrMatrix = dataset.graph.adjacency();
    assert_eq!(adjacency.shape(), (n, n));

    // `sample_candidate_groups` via the prelude.
    let anchors: Vec<usize> = (0..dataset.graph.num_nodes()).step_by(5).collect();
    let (groups, _stats) =
        sample_candidate_groups(&dataset.graph, &anchors, &SamplingConfig::default());
    assert!(!groups.is_empty(), "sampling produced no candidate groups");

    // `Tpgcl` via the prelude.
    let tpgcl = Tpgcl::new(dataset.graph.feature_dim(), TpgclConfig::default());
    assert!(tpgcl.config().epochs > 0);

    // `TpGrGad` via the prelude, run end-to-end.
    let detector = TpGrGad::new(TpGrGadConfig::fast().with_seed(7));
    let result = detector.detect(&dataset.graph).expect("detect");
    assert_eq!(result.scores.len(), result.candidate_groups.len());
    assert!(result.scores.iter().all(|s| s.is_finite()));
}

/// Umbrella-level module aliases must point at the member crates.
#[test]
fn umbrella_module_aliases_resolve() {
    let m = tp_grgad::linalg::Matrix::zeros(2, 3);
    assert_eq!(m.shape(), (2, 3));
    let g = tp_grgad::graph::Graph::new(3, tp_grgad::linalg::Matrix::zeros(3, 1));
    assert_eq!(g.num_nodes(), 3);
    let report: Option<DetectionReport> = None;
    assert!(report.is_none());
}

/// `datasets::example::generate` must be bit-deterministic for a fixed seed
/// and vary across seeds.
#[test]
fn example_generation_is_deterministic_per_seed() {
    let a = datasets::example::generate(60, 0);
    let b = datasets::example::generate(60, 0);
    assert_eq!(a.name, b.name);
    assert_eq!(a.graph.num_nodes(), b.graph.num_nodes());
    assert_eq!(a.graph.num_edges(), b.graph.num_edges());
    assert_eq!(
        a.graph.edges().collect::<Vec<_>>(),
        b.graph.edges().collect::<Vec<_>>()
    );
    assert_eq!(a.graph.features().as_slice(), b.graph.features().as_slice());
    assert_eq!(a.anomaly_groups, b.anomaly_groups);

    let c = datasets::example::generate(60, 1);
    assert!(
        a.graph.edges().collect::<Vec<_>>() != c.graph.edges().collect::<Vec<_>>()
            || a.graph.features().as_slice() != c.graph.features().as_slice(),
        "different seeds produced identical graphs"
    );
}

/// The full detector must be reproducible: same seed, same scores.
#[test]
fn detection_is_deterministic_for_fixed_seed() {
    let dataset = datasets::example::generate(40, 3);
    let run = |seed: u64| {
        TpGrGad::new(TpGrGadConfig::fast().with_seed(seed))
            .detect(&dataset.graph)
            .expect("detect")
            .scores
    };
    assert_eq!(run(3), run(3));
}
