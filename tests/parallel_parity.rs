//! Thread-count parity suite: proves the determinism contract of the
//! `grgad_parallel` backend end to end.
//!
//! Every test computes the same quantity at 1 worker thread and at N worker
//! threads and asserts **bit-for-bit** equality (`f32::to_bits`, not an
//! epsilon). This is the contract every parallelized hot path promises:
//! N-thread output is indistinguishable from single-threaded output, so the
//! thread count is purely a performance knob.
//!
//! CI runs this suite twice — once with `GRGAD_THREADS=1` and once with
//! `GRGAD_THREADS=4` — so a divergence between single- and multi-threaded
//! execution fails the build (see `.github/workflows/ci.yml`).

use std::sync::Mutex;

use tp_grgad::prelude::*;

/// Serializes tests that flip the process-global thread cap so two parity
/// comparisons never interleave their `set_max_threads` calls.
static THREAD_GUARD: Mutex<()> = Mutex::new(());

/// Runs `body` once with the backend pinned to 1 thread and once pinned to
/// `threads`, restoring the auto default afterwards, and returns both values.
fn at_threads<R>(threads: usize, body: impl Fn() -> R) -> (R, R) {
    let _lock = THREAD_GUARD
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    tp_grgad::parallel::set_max_threads(1);
    let single = body();
    tp_grgad::parallel::set_max_threads(threads);
    let multi = body();
    tp_grgad::parallel::set_max_threads(0);
    (single, multi)
}

fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {i} diverged across thread counts: {x} vs {y}"
        );
    }
}

#[test]
fn dense_matmul_parity() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(11);
    // Large enough to cross the parallelism flop gate (384·128·96 ≈ 4.7M).
    let a = Matrix::rand_normal(384, 128, 1.0, &mut rng);
    let b = Matrix::rand_normal(128, 96, 1.0, &mut rng);
    let (single, multi) = at_threads(4, || a.matmul(&b));
    assert_bits_eq(single.as_slice(), multi.as_slice(), "dense matmul");
}

#[test]
fn csr_matmul_dense_parity() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(12);
    let dense_a = Matrix::rand_normal(300, 300, 1.0, &mut rng);
    // Sparsify to ~50% so nnz · cols crosses the flop gate.
    let sparse = CsrMatrix::from_dense(&dense_a.map(|v| if v > 0.0 { v } else { 0.0 }), 0.0);
    let x = Matrix::rand_normal(300, 64, 1.0, &mut rng);
    let (single, multi) = at_threads(4, || sparse.matmul_dense(&x));
    assert_bits_eq(single.as_slice(), multi.as_slice(), "CSR spmm");
}

/// A reusable embedding-space fixture: a jittered lattice plus far outliers.
fn embedding_fixture() -> (Matrix, Matrix) {
    let mut rows: Vec<f32> = Vec::new();
    for i in 0..120 {
        rows.push((i % 11) as f32 * 0.05);
        rows.push((i % 7) as f32 * 0.07);
        rows.push((i % 5) as f32 * 0.03);
    }
    for k in 0..6 {
        rows.extend_from_slice(&[10.0 + k as f32, -8.0 - k as f32, 9.0]);
    }
    let train = Matrix::from_vec(126, 3, rows);
    let queries = Matrix::from_rows(&[
        &[0.1, 0.1, 0.05],
        &[20.0, 20.0, -20.0],
        &[0.3, 0.2, 0.1],
        &[-15.0, 3.0, 8.0],
    ]);
    (train, queries)
}

#[test]
fn lof_fit_and_novelty_parity() {
    use tp_grgad::outlier::Lof;
    let (train, queries) = embedding_fixture();
    let (single, multi) = at_threads(4, || {
        let mut lof = Lof::new(8);
        lof.fit(&train);
        let transductive = lof.score(&train);
        let novelty = lof.score(&queries);
        (transductive, novelty)
    });
    assert_bits_eq(&single.0, &multi.0, "LOF transductive scores");
    assert_bits_eq(&single.1, &multi.1, "LOF novelty scores");
}

#[test]
fn isolation_forest_parity() {
    use tp_grgad::outlier::IsolationForest;
    let (train, queries) = embedding_fixture();
    let (single, multi) = at_threads(4, || {
        let mut forest = IsolationForest::new(60, 48, 5);
        forest.fit(&train);
        (forest.score(&train), forest.score(&queries))
    });
    assert_bits_eq(&single.0, &multi.0, "iForest train scores");
    assert_bits_eq(&single.1, &multi.1, "iForest query scores");
}

#[test]
fn ecod_parity() {
    let (train, queries) = embedding_fixture();
    let (single, multi) = at_threads(4, || {
        let mut ecod = Ecod::new();
        ecod.fit(&train);
        (ecod.score(&train), ecod.score(&queries))
    });
    assert_bits_eq(&single.0, &multi.0, "ECOD train scores");
    assert_bits_eq(&single.1, &multi.1, "ECOD query scores");
}

#[test]
fn ensemble_parity() {
    use tp_grgad::outlier::Ensemble;
    let (train, queries) = embedding_fixture();
    let (single, multi) = at_threads(4, || {
        let mut ensemble = Ensemble::suod_like(2);
        ensemble.fit(&train);
        (ensemble.score(&train), ensemble.score(&queries))
    });
    assert_bits_eq(&single.0, &multi.0, "ensemble train scores");
    assert_bits_eq(&single.1, &multi.1, "ensemble query scores");
}

/// End-to-end parity on a seeded graph: `fit` (all training epochs) followed
/// by `score` and `score_groups` must be bit-for-bit identical at 1 and N
/// threads. Uses `num_threads` on the config — the supported entry point —
/// so this also exercises the config → backend forwarding.
#[test]
fn full_pipeline_fit_score_parity() {
    let dataset = tp_grgad::datasets::example::generate(48, 21);
    let run = |threads: usize| {
        let config = TpGrGadConfig::builder()
            .fast()
            .num_threads(threads)
            .seed(13)
            .build();
        let trained = TpGrGad::new(config).fit(&dataset.graph).expect("fit");
        let result = trained.score(&dataset.graph).expect("score");
        let direct = trained
            .score_groups(&dataset.graph, &result.candidate_groups)
            .expect("score_groups");
        (
            result.node_errors,
            result.scores,
            result.predicted_anomalous,
            direct,
        )
    };
    let _lock = THREAD_GUARD
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let single = run(1);
    let multi = run(4);
    tp_grgad::parallel::set_max_threads(0);
    assert_bits_eq(&single.0, &multi.0, "pipeline node errors");
    assert_bits_eq(&single.1, &multi.1, "pipeline group scores");
    assert_eq!(single.2, multi.2, "pipeline predictions diverged");
    assert_bits_eq(&single.3, &multi.3, "score_groups batch scores");
}

/// The `GRGAD_THREADS`-driven CI contract: a config built with the
/// environment default must produce exactly the same scores as one pinned to
/// a single thread. CI runs this test with `GRGAD_THREADS=1` and
/// `GRGAD_THREADS=4`; if multi-threaded execution ever diverged from
/// single-threaded, the 4-thread run would fail here.
#[test]
fn env_default_config_matches_single_thread_reference() {
    let dataset = tp_grgad::datasets::example::generate(40, 33);
    let run = |num_threads: Option<usize>| {
        let mut config = TpGrGadConfig::fast().with_seed(29);
        if let Some(n) = num_threads {
            config.num_threads = n;
        }
        let trained = TpGrGad::new(config).fit(&dataset.graph).expect("fit");
        trained.score(&dataset.graph).expect("score").scores
    };
    let _lock = THREAD_GUARD
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let env_default = run(None); // whatever GRGAD_THREADS / auto resolves to
    let reference = run(Some(1));
    tp_grgad::parallel::set_max_threads(0);
    assert_bits_eq(&reference, &env_default, "env-default vs 1-thread scores");
}
