//! # TP-GrGAD — Topology Pattern Enhanced Unsupervised Group-level Graph Anomaly Detection
//!
//! Umbrella crate for the TP-GrGAD reproduction workspace. It re-exports the
//! individual crates so examples and downstream users can depend on a single
//! crate:
//!
//! ```rust
//! use tp_grgad::prelude::*;
//!
//! # fn main() -> Result<(), GrgadError> {
//! let dataset = datasets::example::generate(60, 0);
//! let pipeline = TpGrGad::new(TpGrGadConfig::fast().with_seed(0));
//! // Fit once, then score any number of graphs/snapshots without retraining.
//! // Every public fallible entry point returns `Result<_, GrgadError>`;
//! // malformed input (empty graph, NaN features, shape mismatch) is a typed
//! // error at the boundary, never a panic deep inside the pipeline.
//! let trained = pipeline.fit(&dataset.graph)?;
//! let result = trained.score(&dataset.graph)?;
//! assert_eq!(result.scores.len(), result.candidate_groups.len());
//! // The trained model round-trips through JSON with exact score parity.
//! let reloaded = TrainedTpGrGad::from_json(&trained.to_json()?)?;
//! assert_eq!(reloaded.score(&dataset.graph)?.scores, result.scores);
//! # Ok(())
//! # }
//! ```
//!
//! See the repository README for the architecture overview and DESIGN.md for
//! the paper-to-module mapping.

// The serving contract extends workspace-wide: no `unwrap()` outside
// test code — fallible paths return `Result<_, GrgadError>` or justify
// themselves with `expect` + a `grgad-lint` suppression where truly
// infallible. Enforced per-crate so the vendored shims stay untouched.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub use grgad_autograd as autograd;
pub use grgad_baselines as baselines;
pub use grgad_core as core;
pub use grgad_datasets as datasets;
pub use grgad_gnn as gnn;
pub use grgad_graph as graph;
pub use grgad_linalg as linalg;
pub use grgad_metrics as metrics;
pub use grgad_outlier as outlier;
pub use grgad_parallel as parallel;
pub use grgad_sampling as sampling;
pub use grgad_serve as serve;
pub use grgad_server as server;
pub use grgad_tpgcl as tpgcl;
pub use grgad_tsne as tsne;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use grgad_baselines as baselines;
    pub use grgad_core::{
        DetectorKind, GrgadError, GroupEmbeddingCache, IncrementalState, IncrementalStats,
        NullObserver, PipelineObserver, PipelinePhase, PipelineStage, StageTimings, TimingObserver,
        TpGrGad, TpGrGadConfig, TpGrGadConfigBuilder, TpGrGadResult, TrainedTpGrGad,
    };
    pub use grgad_datasets as datasets;
    pub use grgad_datasets::{DatasetScale, GrGadDataset};
    pub use grgad_gnn::{GaeConfig, MhGae, ReconstructionTarget};
    pub use grgad_graph::{Graph, Group, TopologyPattern};
    pub use grgad_linalg::{CsrMatrix, Matrix};
    pub use grgad_metrics::{evaluate_detection, DetectionReport};
    pub use grgad_outlier::{Ecod, OutlierDetector};
    pub use grgad_sampling::{sample_candidate_groups, SamplingConfig};
    pub use grgad_serve::{EngineConfig, GraphDelta, ScoreMode, ScoringEngine};
    pub use grgad_server::{EngineRegistry, HostClient, ListenAddr, ServerConfig};
    pub use grgad_tpgcl::{Augmentation, Tpgcl, TpgclConfig};
}
